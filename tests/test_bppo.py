"""Tests for Block-Parallel Point Operations (paper §IV-B)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    allocate_samples,
    block_ball_query,
    block_fps,
    block_gather,
    block_interpolate,
    block_knn,
    FractalConfig,
    fractal_partition,
)
from repro.geometry import (
    ball_query,
    coverage_radius,
    farthest_point_sample,
    gather_features,
    interpolate_features,
    neighbor_recall,
    knn_search,
)


class TestAllocateSamples:
    def test_exact_total(self):
        quotas = allocate_samples(np.array([10, 20, 30]), 30)
        assert quotas.sum() == 30

    def test_proportionality(self):
        quotas = allocate_samples(np.array([100, 200, 300]), 60)
        assert quotas.tolist() == [10, 20, 30]

    def test_never_exceeds_block_size(self):
        quotas = allocate_samples(np.array([2, 1000]), 500)
        assert quotas[0] <= 2
        assert quotas.sum() == 500

    def test_validates_input(self):
        with pytest.raises(ValueError, match="positive"):
            allocate_samples(np.array([0, 5]), 2)
        with pytest.raises(ValueError, match="num_samples"):
            allocate_samples(np.array([4, 4]), 9)

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.integers(1, 500), min_size=1, max_size=40),
        st.data(),
    )
    def test_property_exact_and_bounded(self, sizes, data):
        sizes = np.array(sizes)
        s = data.draw(st.integers(1, int(sizes.sum())))
        quotas = allocate_samples(sizes, s)
        assert quotas.sum() == s
        assert (quotas >= 0).all()
        assert (quotas <= sizes).all()


class TestAllocationClamp:
    """Regression: an over-budget request (ratio rounding meeting a tiny
    cloud) used to surface as an unhelpful ValueError deep inside
    ``farthest_point_sample``; ``clamp=True`` caps it at the population."""

    def test_clamp_caps_over_budget_request(self):
        sizes = np.array([3, 2])
        quotas = allocate_samples(sizes, 11, clamp=True)
        assert quotas.tolist() == [3, 2]

    def test_clamp_leaves_valid_requests_alone(self):
        sizes = np.array([10, 20])
        assert np.array_equal(
            allocate_samples(sizes, 6, clamp=True), allocate_samples(sizes, 6)
        )

    def test_default_still_raises(self):
        with pytest.raises(ValueError, match="num_samples"):
            allocate_samples(np.array([4, 4]), 9)

    def test_block_fps_survives_tiny_blocks(self):
        """Tiny cloud, tiny blocks, over-budget sample request: block_fps
        must degrade to 'take every point' instead of raising."""
        coords = np.random.default_rng(0).normal(size=(5, 3))
        structure = fractal_partition(coords, FractalConfig(threshold=2)).block_structure()
        idx, trace = block_fps(structure, coords, 12)
        assert sorted(idx.tolist()) == [0, 1, 2, 3, 4]
        assert trace.total_outputs == 5

    def test_fps_error_message_points_to_clamp(self):
        coords = np.random.default_rng(1).normal(size=(4, 3))
        with pytest.raises(ValueError, match="clamp"):
            farthest_point_sample(coords, 9)


class TestBlockFPS:
    def test_exact_count_and_uniqueness(self, small_structure, gaussian_cloud):
        idx, trace = block_fps(small_structure, gaussian_cloud, 250)
        assert len(idx) == 250
        assert len(set(idx.tolist())) == 250
        assert trace.kind == "fps"
        assert trace.total_outputs == 250

    def test_samples_come_from_their_blocks(self, small_structure, gaussian_cloud):
        idx, _ = block_fps(small_structure, gaussian_cloud, 100)
        owner = small_structure.block_of_point()
        # Every sampled point's block received a non-zero quota.
        sampled_blocks, counts = np.unique(owner[idx], return_counts=True)
        quotas = allocate_samples(small_structure.block_sizes, 100)
        for b, c in zip(sampled_blocks, counts):
            assert quotas[b] == c

    def test_coverage_close_to_exact_fps(self, scene_coords):
        """Block-wise sampling preserves coverage (the <0.2% accuracy
        claim's geometric driver)."""
        tree = fractal_partition(scene_coords, FractalConfig(threshold=256))
        structure = tree.block_structure()
        n_s = len(scene_coords) // 4
        approx, _ = block_fps(structure, scene_coords, n_s)
        exact = farthest_point_sample(scene_coords, n_s)
        ratio = coverage_radius(scene_coords, approx) / coverage_radius(scene_coords, exact)
        assert ratio < 2.0  # same order of coverage; typically ~1.1-1.5

    def test_trace_block_work(self, small_structure, gaussian_cloud):
        _, trace = block_fps(small_structure, gaussian_cloud, 100)
        assert trace.num_blocks == small_structure.num_blocks
        for work in trace.blocks:
            assert work.n_search == work.n_points  # FPS searches its own block


class TestBlockBallQuery:
    def test_neighbors_within_search_space(self, small_structure, gaussian_cloud):
        centers, _ = block_fps(small_structure, gaussian_cloud, 200)
        nbrs, trace = block_ball_query(small_structure, gaussian_cloud, centers, 0.5, 8)
        assert nbrs.shape == (200, 8)
        owner = small_structure.block_of_point()
        for row, c in enumerate(centers):
            space = set(small_structure.search_spaces[owner[c]].tolist())
            assert set(nbrs[row].tolist()) <= space

    def test_radius_respected_or_fallback(self, small_structure, gaussian_cloud):
        centers, _ = block_fps(small_structure, gaussian_cloud, 50)
        r = 0.4
        nbrs, _ = block_ball_query(small_structure, gaussian_cloud, centers, r, 8)
        d = np.linalg.norm(
            gaussian_cloud[centers][:, None, :] - gaussian_cloud[nbrs], axis=2
        )
        # Each row either has all-within-radius or is a nearest-fallback row.
        within = (d <= r + 1e-9).all(axis=1)
        assert within.mean() > 0.9

    def test_high_recall_vs_global_search(self, scene_coords):
        """Parent-expanded search spaces recover almost all true
        neighbours — the mechanism behind <0.6% accuracy loss (Fig. 14)."""
        tree = fractal_partition(scene_coords, FractalConfig(threshold=256))
        structure = tree.block_structure()
        centers, _ = block_fps(structure, scene_coords, 512)
        approx, _ = block_ball_query(structure, scene_coords, centers, 0.2, 16)
        exact = ball_query(scene_coords[centers], scene_coords, 0.2, 16)
        # Most true neighbours are recovered; the residual loss is what
        # retraining absorbs (paper §VI-B).
        assert neighbor_recall(approx, exact) > 0.75


class TestBlockKNN:
    def test_subset_of_candidates(self, small_structure, gaussian_cloud, rng):
        cands = rng.choice(len(gaussian_cloud), size=200, replace=False)
        centers = np.arange(len(gaussian_cloud))
        nbrs, _ = block_knn(small_structure, gaussian_cloud, centers, cands, 3)
        assert set(nbrs.ravel().tolist()) <= set(cands.tolist())

    def test_widening_on_candidate_starved_blocks(self, small_structure, gaussian_cloud):
        # Only 3 candidates total: every block must widen to the full set.
        cands = np.array([0, 1, 2])
        centers = np.arange(50)
        nbrs, trace = block_knn(small_structure, gaussian_cloud, centers, cands, 3)
        assert trace.num_widened >= 1
        assert set(nbrs.ravel().tolist()) <= {0, 1, 2}

    def test_needs_k_candidates(self, small_structure, gaussian_cloud):
        with pytest.raises(ValueError, match="candidates"):
            block_knn(small_structure, gaussian_cloud, np.arange(5), np.array([1]), 3)

    def test_matches_exact_when_single_block(self, gaussian_cloud, rng):
        from repro.partition import NoPartitioner

        structure = NoPartitioner()(gaussian_cloud)
        cands = rng.choice(len(gaussian_cloud), size=100, replace=False)
        centers = np.arange(40)
        ours, _ = block_knn(structure, gaussian_cloud, centers, cands, 3)
        exact_local = knn_search(gaussian_cloud[centers], gaussian_cloud[cands], 3)
        assert np.array_equal(ours, cands[exact_local])


class TestBlockInterpolate:
    def test_matches_exact_for_single_block(self, gaussian_cloud, rng):
        from repro.partition import NoPartitioner

        structure = NoPartitioner()(gaussian_cloud)
        cands = np.sort(rng.choice(len(gaussian_cloud), size=120, replace=False))
        feats = rng.normal(size=(120, 8))
        centers = np.arange(len(gaussian_cloud))
        ours, _ = block_interpolate(structure, gaussian_cloud, centers, cands, feats)
        exact = interpolate_features(gaussian_cloud, gaussian_cloud[cands], feats)
        assert np.allclose(ours, exact, atol=1e-6)

    def test_feature_alignment_checked(self, small_structure, gaussian_cloud, rng):
        with pytest.raises(ValueError, match="align"):
            block_interpolate(
                small_structure, gaussian_cloud, np.arange(5),
                np.array([0, 1, 2, 3]), rng.normal(size=(3, 4)),
            )

    def test_interpolation_close_to_global(self, scene_coords, rng):
        tree = fractal_partition(scene_coords, FractalConfig(threshold=256))
        structure = tree.block_structure()
        cands = np.sort(rng.choice(len(scene_coords), size=2048, replace=False))
        feats = rng.normal(size=(2048, 4))
        centers = rng.choice(len(scene_coords), size=1000, replace=False)
        ours, trace = block_interpolate(structure, scene_coords, centers, cands, feats)
        exact = interpolate_features(
            scene_coords[centers], scene_coords[cands], feats
        )
        # Most rows identical (same 3-NN found inside the parent space).
        same = np.isclose(ours, exact, atol=1e-6).all(axis=1).mean()
        assert same > 0.8


class TestBlockGather:
    def test_functionally_identical_to_global(self, small_structure, gaussian_cloud, rng):
        feats = rng.normal(size=(len(gaussian_cloud), 16))
        centers, _ = block_fps(small_structure, gaussian_cloud, 100)
        nbrs, _ = block_ball_query(small_structure, gaussian_cloud, centers, 0.5, 8)
        ours, trace = block_gather(small_structure, feats, nbrs, centers)
        assert np.array_equal(ours, gather_features(feats, nbrs))
        assert trace.kind == "gather"
        assert trace.total_outputs == 100 * 8
