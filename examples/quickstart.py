"""Quickstart: Fractal partitioning + block-parallel point operations.

Builds a synthetic object cloud, partitions it with Fractal, runs the
three block-parallel point operations, and compares their quality against
the exact global-search references — then hands a whole batch of clouds
to the :class:`~repro.runtime.executor.BatchExecutor` engine.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import FractalConfig, fractal_partition
from repro.core import BlockLayout, dispatch
from repro.datasets import sample_shape
from repro.geometry import coverage_radius, farthest_point_sample
from repro.runtime import BatchExecutor, PipelineSpec


def main() -> None:
    rng = np.random.default_rng(0)
    cloud = sample_shape("torus", 4096, rng)
    coords = cloud.coords.astype(np.float64)
    print(f"input: {cloud} (torus surface, scan-biased density)")

    # 1. Fractal partitioning (paper Alg. 1).
    tree = fractal_partition(coords, FractalConfig(threshold=64))
    print(f"\nFractal: {tree.num_blocks} blocks in {tree.num_levels} levels "
          f"(threshold 64, max block {tree.block_sizes.max()}, "
          f"{tree.cost.num_traversals} traversals)")

    # 2. DFT memory layout: blocks are contiguous, subtrees are ranges.
    layout = BlockLayout.from_tree(tree)
    start, end = layout.block_range(0)
    print(f"DFT layout: block 0 occupies stored range [{start}, {end})")

    structure = tree.block_structure()

    # 3. Block-wise FPS vs exact FPS.  Ops go through the dispatcher,
    # which picks the fastest kernel (loop / stacked / ragged) from its
    # cost model — pass kernel="loop" etc. to pin one.
    n_samples = 1024
    sampled, fps_trace = dispatch.run_op(
        "fps", structure, coords, n_samples, num_centers=n_samples
    )
    exact_sampled = farthest_point_sample(coords, n_samples)
    ratio = coverage_radius(coords, sampled) / coverage_radius(coords, exact_sampled)
    print(f"\nblock-wise FPS: {len(sampled)} samples over "
          f"{fps_trace.num_blocks} parallel blocks; "
          f"coverage ratio vs exact FPS = {ratio:.3f} (1.0 = exact)")

    # 4. Block-wise ball query: every returned neighbour must lie within
    # the radius (any in-radius subset is a valid PointNet++ group).
    radius = 0.15
    neighbors, bq_trace = dispatch.run_op(
        "ball_query", structure, coords, sampled, radius, 16,
        num_centers=len(sampled),
    )
    dists = np.linalg.norm(coords[sampled][:, None, :] - coords[neighbors], axis=2)
    validity = float((dists <= radius + 1e-9).mean())
    print(f"block-wise ball query: {validity:.1%} of returned neighbours "
          f"within radius ({bq_trace.total_search_elements:,} distance "
          f"computations vs {len(sampled) * len(coords):,} for global search)")

    # 5. Block-wise gathering (functionally identical to global).
    features = rng.normal(size=(len(coords), 32)).astype(np.float64)
    gathered, _ = dispatch.run_op(
        "gather", structure, features, neighbors, sampled,
        num_centers=len(sampled),
    )
    print(f"block-wise gather: {gathered.shape} feature tensor "
          f"(values identical to global gathering by construction)")

    # 6. Many clouds at once: the batched execution engine runs the whole
    # FPS → group → gather → interpolate pipeline per cloud, schedules
    # clouds across a worker pool, and deduplicates identical requests
    # (the repeated cloud below is computed only once and replayed).
    batch = [sample_shape(shape, 2048, rng)
             for shape in ("torus", "sphere", "cube", "cylinder")]
    batch.append(batch[0])  # duplicate request → result reuse
    with BatchExecutor("fractal", block_size=64, max_workers=4) as engine:
        report = engine.run(batch, PipelineSpec(radius=radius, group_size=16))
    stats = report.stats
    print(f"\nbatched engine: {stats.clouds} clouds in "
          f"{stats.wall_seconds * 1e3:.0f} ms "
          f"({stats.clouds_per_second:.1f} clouds/s, "
          f"{stats.reused} duplicate request(s) reused); "
          f"cloud 0 interpolated features {report.results[0].interpolated.shape}")


if __name__ == "__main__":
    main()
