"""Extension bench — mixed-size whole-cloud fusion vs the worker pool.

Real serving traffic is ragged: LiDAR frames, detection ROI crops, and
mixed assets never share one point count, so the equal-size-only fusion
of PR 2 covered almost none of it.  The size-bucketing scheduler packs
near-equal clouds under the fuse-group budget and runs each bucket as
one ragged problem per pipeline stage.  The acceptance bar:

- on the serving-shaped mix (a stream of small ROI-crop-sized clouds of
  uniformly random sizes, with repeated requests sprinkled in), the fused
  engine must beat the pooled (thread-pool, per-cloud) engine by >= 1.5x
  wall-clock throughput;
- on a frame-sized mix (larger ragged clouds) fused must still win;
- every timed configuration is asserted bit-identical to the pooled
  path per cloud (same engine semantics, same results).

Both engines share warmed partition caches, so the comparison isolates
execution strategy, not partitioning.
"""

import numpy as np

from repro.analysis import format_table
from repro.runtime import BatchExecutor, PipelineSpec

from _common import best_time, emit

PIPELINE = PipelineSpec(sample_ratio=0.25, radius=0.25, group_size=16)
WORKERS = 4

#: (label, size range, cloud count, repeats, block size, acceptance bar)
MIXES = (
    ("roi crops", (64, 256), 112, 16, 32, 1.5),
    ("frames", (800, 1600), 28, 4, 64, 1.0),
)


def _ragged_stream(lo, hi, count, repeats, seed=0):
    """``count`` distinct clouds with sizes uniform in [lo, hi), plus
    ``repeats`` exact re-requests of early clouds (serving dedup traffic)."""
    rng = np.random.default_rng(seed)
    sizes = rng.integers(lo, hi, size=count)
    clouds = [
        np.random.default_rng(1000 + i).normal(size=(int(n), 3))
        for i, n in enumerate(sizes)
    ]
    return clouds + [clouds[i % count] for i in range(repeats)]


def run_bench():
    rows = []
    speedups = {}
    for label, (lo, hi), count, repeats, block_size, bar in MIXES:
        clouds = _ragged_stream(lo, hi, count, repeats)
        pooled = BatchExecutor(
            "kdtree", block_size=block_size, max_workers=WORKERS, mode="thread"
        )
        fused = BatchExecutor(
            "kdtree", block_size=block_size, max_workers=WORKERS, fuse=True
        )
        with pooled, fused:
            t_pool, rep_pool = best_time(lambda: pooled.run(clouds, PIPELINE))
            t_fuse, rep_fuse = best_time(
                lambda: fused.run(clouds, PIPELINE, fuse=True)
            )

        # Fusion must not change a single index or feature bit.
        for a, b in zip(rep_pool.results, rep_fuse.results):
            assert np.array_equal(a.sampled, b.sampled)
            assert np.array_equal(a.neighbors, b.neighbors)
            assert np.array_equal(a.interpolated, b.interpolated)
        assert rep_fuse.stats.reused == repeats

        total = len(clouds)
        points = rep_fuse.stats.points
        speedups[label] = (t_pool / t_fuse, bar)
        rows.append([
            label, f"{lo}-{hi - 1}", total,
            f"pool ({WORKERS} thr)", f"{t_pool * 1e3:.0f}",
            f"{total / t_pool:.0f}", f"{points / t_pool / 1e3:.0f}K", "1.00x",
        ])
        rows.append([
            label, f"{lo}-{hi - 1}", total,
            "fused buckets", f"{t_fuse * 1e3:.0f}",
            f"{total / t_fuse:.0f}", f"{points / t_fuse / 1e3:.0f}K",
            f"{t_pool / t_fuse:.2f}x",
        ])

    table = format_table(
        ["mix", "sizes", "clouds", "engine", "ms / batch",
         "clouds / s", "points / s", "speedup"],
        rows,
        title="mixed-size whole-cloud fusion vs worker pool "
              "(kdtree, warm partition caches)",
    )
    return table, speedups


def test_fused_mixed(benchmark):
    table, speedups = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    emit("fused_mixed", table)
    # Acceptance: >= 1.5x over the pool on the serving-shaped ragged mix,
    # and fused never loses on the frame-sized mix.
    for label, (speedup, bar) in speedups.items():
        assert speedup >= bar, (label, speedup, bar)
