"""Structured spans: a thread-safe tracer with cross-process stitching.

The tracer is the project's only sanctioned clock consumer (REP008):
everything else reads timestamps through :data:`now` and measures
durations by opening spans.  Design constraints, in order:

- **Disabled path is free.**  ``tracer.span(...)`` with ``enabled=False``
  returns a shared no-op singleton without touching thread-local state;
  instrumentation sites additionally guard attr-dict construction behind
  ``obs.enabled()`` so a disabled build does no allocation at all.
- **Head-based sampling.**  The sampling decision is made once, when a
  *root* span opens (counter-based ``1/N`` so runs are deterministic);
  descendants inherit it.  Unsampled traces still maintain stack
  discipline via a depth counter, so a sampled span can never
  accidentally parent itself under an unsampled ancestor.
- **Cross-process stitching.**  ``time.perf_counter`` on Linux reads
  ``CLOCK_MONOTONIC``, which is system-wide: timestamps taken in forked
  shard workers are directly comparable with the router's.  A span
  context ``(trace_id, span_id)`` rides the existing pipe messages;
  the worker opens its window span with :meth:`Tracer.span_remote` and
  ships finished spans back in wire form for :meth:`Tracer.adopt`.
  Span ids are salted with the pid so two processes never collide.

``sample=0`` is the *worker* mode: local roots are never sampled, so the
only spans a worker records are those parented to a remote context the
router already chose to sample.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterable

__all__ = [
    "NULL_SPAN",
    "OpenSpan",
    "Span",
    "Tracer",
    "now",
]

#: The sanctioned monotonic clock (see module docstring and REP008).
now = time.perf_counter

#: Finished spans kept per tracer before new ones are dropped (a tracer
#: that is enabled but never drained must not grow without bound).
MAX_FINISHED = 262_144


@dataclass(frozen=True)
class Span:
    """One finished span.  ``start``/``end`` are :data:`now` seconds."""

    name: str
    trace_id: int
    span_id: int
    parent_id: int
    start: float
    end: float
    pid: int
    tid: int
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)

    def to_wire(self) -> tuple:
        """Compact picklable form for shipping over the shard pipes."""
        return (
            self.name,
            self.trace_id,
            self.span_id,
            self.parent_id,
            self.start,
            self.end,
            self.pid,
            self.tid,
            self.attrs,
        )

    @classmethod
    def from_wire(cls, wire: tuple) -> "Span":
        return cls(*wire)


class _NullSpan:
    """Shared no-op for the disabled path: no state, no allocation."""

    __slots__ = ()
    sampled = False
    ctx = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def annotate(self, **attrs) -> None:
        return None


NULL_SPAN = _NullSpan()


class _State:
    """Per-thread tracer state: the open-span stack + unsampled depth."""

    __slots__ = ("stack", "skip")

    def __init__(self) -> None:
        self.stack: list[_ActiveSpan] = []
        self.skip = 0


class _SkipSpan:
    """Stack-disciplined no-op for spans inside an unsampled trace.

    Entering bumps the thread's ``skip`` depth so nested ``span()``
    calls stay cheap (one integer test) and never record; exiting
    unwinds it.  One shared instance per tracer — it holds no per-span
    state.
    """

    __slots__ = ("_tracer",)
    sampled = False
    ctx = None

    def __init__(self, tracer: "Tracer") -> None:
        self._tracer = tracer

    def __enter__(self):
        self._tracer._state().skip += 1
        return self

    def __exit__(self, *exc):
        state = self._tracer._state()
        if state.skip > 0:
            state.skip -= 1
        return False

    def annotate(self, **attrs) -> None:
        return None


class _ActiveSpan:
    """An open recording span; context manager pushed on the stack."""

    __slots__ = ("_tracer", "name", "trace_id", "span_id", "parent_id", "start", "attrs")
    sampled = True

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        trace_id: int,
        parent_id: int,
        attrs: dict[str, Any],
        start: float | None,
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.parent_id = parent_id
        self.attrs = attrs
        self.span_id = 0
        self.start = -1.0 if start is None else start

    @property
    def ctx(self) -> tuple[int, int]:
        return (self.trace_id, self.span_id)

    def annotate(self, **attrs) -> None:
        self.attrs.update(attrs)

    def __enter__(self):
        self.span_id = self._tracer._next_id()
        if self.trace_id == 0:
            self.trace_id = self.span_id
        if self.start < 0.0:
            self.start = now()
        self._tracer._state().stack.append(self)
        return self

    def __exit__(self, exc_type, exc, tb):
        end = now()
        stack = self._tracer._state().stack
        if stack and stack[-1] is self:
            stack.pop()
        elif self in stack:  # tolerate mis-nested exits; drop descendants
            del stack[stack.index(self):]
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._finish(
            Span(
                self.name,
                self.trace_id,
                self.span_id,
                self.parent_id,
                self.start,
                end,
                self._tracer.pid,
                threading.get_ident() & 0xFFFFFFFF,
                self.attrs,
            )
        )
        return False


class OpenSpan:
    """A sampled root span held open across threads (no stack entry).

    The shard router opens one per submitted request and finishes it at
    emission; ``ctx`` is what rides the pipe so the worker can parent
    its window span to it.
    """

    __slots__ = ("_tracer", "name", "trace_id", "span_id", "start", "attrs")
    sampled = True

    def __init__(self, tracer: "Tracer", name: str, attrs: dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = tracer._next_id()
        self.trace_id = self.span_id
        self.start = now()
        self.attrs = attrs

    @property
    def ctx(self) -> tuple[int, int]:
        return (self.trace_id, self.span_id)

    def annotate(self, **attrs) -> None:
        self.attrs.update(attrs)

    def finish(self, end: float | None = None, **attrs) -> None:
        if attrs:
            self.attrs.update(attrs)
        self._tracer._finish(
            Span(
                self.name,
                self.trace_id,
                self.span_id,
                0,
                self.start,
                now() if end is None else end,
                self._tracer.pid,
                threading.get_ident() & 0xFFFFFFFF,
                self.attrs,
            )
        )


class Tracer:
    """Thread-safe span recorder with counter-based head sampling.

    ``sample=N`` records every Nth root trace (N >= 1); ``sample=0``
    records no local roots at all (worker mode: only spans parented to
    a remote context record).  The decision is made per root and
    inherited by every descendant on the same thread.
    """

    def __init__(self, *, enabled: bool = False, sample: int = 1) -> None:
        if sample < 0:
            raise ValueError("sample must be >= 0 (0 = remote-parented only)")
        self.enabled = bool(enabled)
        self.sample = int(sample)
        self.pid = os.getpid()
        self.dropped = 0
        self._finished: list[Span] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        self._ids = itertools.count(1)
        self._roots = itertools.count()
        self._skip = _SkipSpan(self)
        # pid-salted so ids from forked workers never collide with ours.
        self._id_base = (self.pid & 0x3FFFFF) << 40

    # -- internals -----------------------------------------------------

    def _state(self) -> _State:
        state = getattr(self._local, "state", None)
        if state is None:
            state = self._local.state = _State()
        return state

    def _next_id(self) -> int:
        return self._id_base | next(self._ids)

    def _sample_root(self) -> bool:
        if self.sample <= 0:
            return False
        if self.sample == 1:
            return True
        return next(self._roots) % self.sample == 0

    def _finish(self, span: Span) -> None:
        with self._lock:
            if len(self._finished) >= MAX_FINISHED:
                self.dropped += 1
            else:
                self._finished.append(span)

    # -- span API ------------------------------------------------------

    def span(self, name: str, attrs: dict[str, Any] | None = None, *, start: float | None = None, **extra):
        """Open a nested span; a context manager.

        ``attrs`` merges with keyword attrs.  ``start`` backdates the
        span (e.g. a serving window opens at its first arrival) without
        affecting stack discipline.
        """
        if not self.enabled:
            return NULL_SPAN
        state = self._state()
        if state.skip:
            return self._skip
        if state.stack:
            top = state.stack[-1]
            trace_id, parent_id = top.trace_id, top.span_id
        else:
            if not self._sample_root():
                return self._skip
            trace_id = parent_id = 0
        merged = dict(attrs) if attrs else {}
        if extra:
            merged.update(extra)
        return _ActiveSpan(self, name, trace_id, parent_id, merged, start)

    def span_remote(self, ctx: tuple[int, int] | None, name: str, attrs: dict[str, Any] | None = None, **extra):
        """Open a span parented to a remote context (or skip if None).

        The remote parent already carries the sampling decision: a
        ``None`` context means "not sampled", and the returned skip
        span suppresses every descendant on this thread.
        """
        if not self.enabled:
            return NULL_SPAN
        if ctx is None:
            return self._skip
        merged = dict(attrs) if attrs else {}
        if extra:
            merged.update(extra)
        return _ActiveSpan(self, name, ctx[0], ctx[1], merged, None)

    def record(
        self,
        name: str,
        start: float,
        end: float,
        *,
        parent: tuple[int, int] | None = None,
        **attrs,
    ) -> None:
        """Record an already-elapsed interval as a finished span.

        Without an explicit ``parent`` context the span attaches to the
        innermost open span on this thread (and is silently dropped in
        unsampled or span-free contexts).
        """
        if not self.enabled:
            return
        if parent is None:
            state = self._state()
            if state.skip or not state.stack:
                return
            top = state.stack[-1]
            trace_id, parent_id = top.trace_id, top.span_id
        else:
            trace_id, parent_id = parent
        self._finish(
            Span(
                name,
                trace_id,
                self._next_id(),
                parent_id,
                start,
                end,
                self.pid,
                threading.get_ident() & 0xFFFFFFFF,
                attrs,
            )
        )

    def open_span(self, name: str, attrs: dict[str, Any] | None = None, **extra) -> OpenSpan | None:
        """Open a sampled root held across threads, or None if unsampled."""
        if not self.enabled or not self._sample_root():
            return None
        merged = dict(attrs) if attrs else {}
        if extra:
            merged.update(extra)
        return OpenSpan(self, name, merged)

    # -- collection ----------------------------------------------------

    def drain(self) -> list[Span]:
        """Take ownership of every finished span recorded so far."""
        with self._lock:
            finished, self._finished = self._finished, []
        return finished

    def adopt(self, wires: Iterable[tuple]) -> int:
        """Merge spans shipped from another process (wire tuples)."""
        spans = [Span.from_wire(w) for w in wires]
        with self._lock:
            self._finished.extend(spans)
        return len(spans)
