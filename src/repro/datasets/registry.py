"""Dataset registry keyed by the paper's benchmark names and input scales.

Table I evaluates ModelNet40 (classification, ~1 K), ShapeNet (part
segmentation, ~2 K), and S3DIS (semantic segmentation, 4 K–289 K; 1 M for
the asymptotic study).  This registry maps those names to the synthetic
substitutes and pins the scale labels used throughout the figures.
"""

from __future__ import annotations

import numpy as np

from ..geometry import PointCloud
from .lidar import lidar_scan
from .parts import sample_part_object, PART_CLASSES
from .scenes import make_scene
from .shapes import SHAPE_CLASSES, sample_shape

__all__ = ["SCALES", "DATASET_NAMES", "load_cloud", "scale_points"]

#: Scale labels used by the paper's figures → point counts.
SCALES: dict[str, int] = {
    "1K": 1_024,
    "2K": 2_048,
    "4K": 4_096,
    "8K": 8_192,
    "16K": 16_384,
    "33K": 33_000,
    "66K": 66_000,
    "131K": 131_000,
    "289K": 289_000,
    "500K": 500_000,
    "1M": 1_000_000,
}

DATASET_NAMES = ("modelnet40", "shapenet", "s3dis", "lidar")


def scale_points(scale: str | int) -> int:
    """Resolve a scale label ("33K") or raw integer to a point count."""
    if isinstance(scale, str):
        if scale not in SCALES:
            raise ValueError(f"unknown scale {scale!r}; expected one of {list(SCALES)}")
        return SCALES[scale]
    if scale < 1:
        raise ValueError(f"point count must be >= 1, got {scale}")
    return int(scale)


def load_cloud(dataset: str, scale: str | int, seed: int = 0) -> PointCloud:
    """Generate one cloud from the named synthetic dataset.

    Args:
        dataset: ``modelnet40`` (object classification), ``shapenet``
            (object part segmentation), ``s3dis`` (indoor scene
            segmentation), or ``lidar`` (automotive scan).
        scale: scale label or explicit point count.
        seed: RNG seed.
    """
    n = scale_points(scale)
    rng = np.random.default_rng(seed)
    if dataset == "modelnet40":
        names = list(SHAPE_CLASSES)
        return sample_shape(names[seed % len(names)], n, rng)
    if dataset == "shapenet":
        names = list(PART_CLASSES)
        return sample_part_object(names[seed % len(names)], n, rng)
    if dataset == "s3dis":
        cloud, _ = make_scene(n, seed)
        return cloud
    if dataset == "lidar":
        return lidar_scan(n, seed)
    raise ValueError(f"unknown dataset {dataset!r}; expected one of {DATASET_NAMES}")
