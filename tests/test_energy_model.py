"""Invariant tests for the energy model and calibration constants."""

from repro.hw import AcceleratorSim, FRACTALCLOUD, POINTACC
from repro.hw import energy as E
from repro.hw.accelerator import GATHER_REFETCH_CAP, POINTOP_SRAM_SHARE
from repro.networks import get_workload


class TestConstants:
    def test_fp16_everywhere(self):
        assert E.BYTES_PER_SCALAR == 2
        assert E.COORD_BYTES == 6

    def test_calibration_factors_sane(self):
        assert 0 < E.FPS_SPILL_FACTOR <= 1.0
        assert 0 < POINTOP_SRAM_SHARE <= 1.0
        assert GATHER_REFETCH_CAP >= 1

    def test_compute_cheaper_than_memory_per_byte(self):
        """The memory-wall premise: moving a byte off-chip costs far more
        than computing on it (the reason partitioning pays off)."""
        mac_per_byte = E.PJ_PER_MAC_FP16 / E.BYTES_PER_SCALAR
        assert E.DRAM_STREAM_PJ_PER_BYTE > 50 * mac_per_byte
        assert E.sram_pj_per_byte(274) < E.DRAM_STREAM_PJ_PER_BYTE


class TestEnergyScaling:
    def test_energy_monotone_in_scale(self):
        spec = get_workload("PNXt(s)")
        sim = AcceleratorSim(FRACTALCLOUD)
        energies = [sim.run(spec, n).energy_j for n in (4096, 33_000, 131_000)]
        assert energies[0] < energies[1] < energies[2]

    def test_average_power_in_chip_envelope(self):
        """FractalCloud's simulated average power should sit near the
        reported 0.58 W — within a small factor, across scales."""
        spec = get_workload("PNXt(s)")
        sim = AcceleratorSim(FRACTALCLOUD)
        for n in (33_000, 289_000):
            r = sim.run(spec, n)
            avg_power = r.energy_j / r.latency_s
            assert 0.1 < avg_power < 3.0, f"{avg_power:.2f} W at {n}"

    def test_dram_dominates_pointacc_large_scale(self):
        r = AcceleratorSim(POINTACC).run(get_workload("PNXt(s)"), 131_000)
        bd = r.energy_breakdown()
        assert bd["dram"] > bd["compute"] + bd["sram"]

    def test_fractalcloud_energy_balanced(self):
        """After BPPO no single component should be pathological."""
        r = AcceleratorSim(FRACTALCLOUD).run(get_workload("PNXt(s)"), 131_000)
        bd = r.energy_breakdown()
        total = sum(bd.values())
        for component, value in bd.items():
            assert value < 0.9 * total, component
