"""Accelerator configurations (Table II) and the Fig. 18 ablation ladder.

All four accelerators share the 16x16 PE array, 1 GHz clock, and
DDR4-2133 (17 GB/s); they differ in buffer size, partitioning strategy,
point-operation engine, and which of the paper's optimisations they
implement.  The granular feature flags exist so the Fig. 18 incremental
ablation (Baseline → +Meso → +RSPU → +BWS → +BWG → +BWI → +BWGa) is just a
sequence of configs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["AcceleratorConfig", "MESORASI", "POINTACC", "CRESCENT", "FRACTALCLOUD",
           "SOTA_CONFIGS", "ablation_ladder"]


@dataclass(frozen=True)
class AcceleratorConfig:
    """One accelerator's micro-architectural parameters.

    Attributes:
        name: display name.
        partitioner: ``none | uniform | kdtree | octree | fractal``.
        block_size: partition threshold / max block size (BS, th).
        block_parallel: blocks execute concurrently across point units
            (False = Crescent-style block-serial).
        window_check: RSPU FPS computation skipping (§V-C).
        intra_block_reuse: RSPU shared-search-space data reuse (§V-C).
        delayed_aggregation: Mesorasi's MLP-before-gather transform.
        block_sampling / block_grouping / block_interpolation /
        block_gathering: the four BPPO decompositions (§IV-B).
        num_point_units: parallel point-operation cores (RSPUs).
        lanes_per_unit: distance lanes per core.
        sram_kb: global buffer capacity (Table II).
        pe_rows / pe_cols: systolic array shape.
        frequency_hz: core clock.
        dram_gbps: DRAM bandwidth.
        area_mm2: reported core area (Table II; reference only).
        sorter_width: KD-tree merge-sort throughput (elements/cycle).
        pe_utilization: sustained fraction of PE-array peak.
        legacy_pointop_factor: slowdown multiplier on point operations
            for designs whose results the paper scales from older work
            (Mesorasi's pre-PointAcc point-op pipeline).
        platform_power_w: constant platform power beyond the accelerator
            core (Mesorasi augments a mobile SoC rather than being a
            standalone ASIC, so its energy includes the host SoC).
    """

    name: str
    partitioner: str = "none"
    block_size: int = 256
    block_parallel: bool = False
    window_check: bool = False
    intra_block_reuse: bool = False
    delayed_aggregation: bool = False
    block_sampling: bool = False
    block_grouping: bool = False
    block_interpolation: bool = False
    block_gathering: bool = False
    num_point_units: int = 1
    lanes_per_unit: int = 16
    sram_kb: float = 274.0
    pe_rows: int = 16
    pe_cols: int = 16
    frequency_hz: float = 1e9
    dram_gbps: float = 17.0
    area_mm2: float = 0.0
    sorter_width: int = 1
    pe_utilization: float = 0.85
    legacy_pointop_factor: float = 1.0
    platform_power_w: float = 0.0

    @property
    def total_point_lanes(self) -> int:
        return self.num_point_units * self.lanes_per_unit

    @property
    def static_power_w(self) -> float:
        """Leakage grows with buffer size (dominant static component)."""
        return 0.05 + 0.0002 * self.sram_kb

    @property
    def uses_partitioning(self) -> bool:
        return self.partitioner != "none" and (
            self.block_sampling
            or self.block_grouping
            or self.block_interpolation
            or self.block_gathering
        )


#: Mesorasi (MICRO'20): delayed aggregation, no partitioning.  Its point
#: operations predate PointAcc's engine; per the paper it is equipped
#: with PointAcc's FPS engine, but its overall point-op datapath remains
#: narrower (results for it are scaled from the original paper).
MESORASI = AcceleratorConfig(
    name="Mesorasi",
    delayed_aggregation=True,
    num_point_units=1,
    lanes_per_unit=8,
    sram_kb=1624.0,
    area_mm2=4.59,
    legacy_pointop_factor=20.0,
    platform_power_w=8.0,
)

#: PointAcc (MICRO'21): lossless global point operations, small buffer.
POINTACC = AcceleratorConfig(
    name="PointAcc",
    num_point_units=1,
    lanes_per_unit=16,
    sram_kb=274.0,
    area_mm2=1.91,
)

#: Crescent (ISCA'22): KD-tree partitioning for memory streaming,
#: delayed aggregation, large buffer, block-serial execution, global FPS
#: (the paper equips it with PointAcc's FPS engine).
CRESCENT = AcceleratorConfig(
    name="Crescent",
    partitioner="kdtree",
    block_parallel=False,
    delayed_aggregation=True,
    block_grouping=True,
    block_interpolation=True,
    block_gathering=True,
    num_point_units=1,
    lanes_per_unit=16,
    sram_kb=1622.8,
    area_mm2=4.75,
)

#: FractalCloud (this paper): Fractal partitioning + full BPPO + RSPUs.
FRACTALCLOUD = AcceleratorConfig(
    name="FractalCloud",
    partitioner="fractal",
    block_parallel=True,
    window_check=True,
    intra_block_reuse=True,
    delayed_aggregation=True,
    block_sampling=True,
    block_grouping=True,
    block_interpolation=True,
    block_gathering=True,
    num_point_units=16,
    lanes_per_unit=8,
    sram_kb=274.0,
    area_mm2=1.5,
    # Delayed aggregation + DFT-streamed operands keep the systolic array
    # fed with no gather stalls, sustaining near-peak utilisation.
    pe_utilization=0.95,
)

SOTA_CONFIGS = {
    "Mesorasi": MESORASI,
    "PointAcc": POINTACC,
    "Crescent": CRESCENT,
    "FractalCloud": FRACTALCLOUD,
}


def ablation_ladder() -> list[AcceleratorConfig]:
    """The Fig. 18 incremental configurations, in order.

    Starts from FractalCloud hardware with every optimisation off
    (global point ops on the RSPU lane budget) and enables one technique
    per rung: delayed aggregation (Meso), RSPU reuse+skip, then the four
    block-wise point operations.
    """
    base = replace(
        FRACTALCLOUD,
        name="Baseline",
        partitioner="none",
        block_parallel=False,
        window_check=False,
        intra_block_reuse=False,
        delayed_aggregation=False,
        block_sampling=False,
        block_grouping=False,
        block_interpolation=False,
        block_gathering=False,
    )
    meso = replace(base, name="Baseline(Meso)", delayed_aggregation=True)
    rspu = replace(meso, name="+RSPU", window_check=True, intra_block_reuse=True)
    bws = replace(rspu, name="+BWS", partitioner="fractal", block_parallel=True,
                  block_sampling=True)
    bwg = replace(bws, name="+BWG", block_grouping=True)
    bwi = replace(bwg, name="+BWI", block_interpolation=True)
    bwga = replace(bwi, name="+BWGa", block_gathering=True)
    return [base, meso, rspu, bws, bwg, bwi, bwga]
