"""Cross-product simulator coverage: every workload on every platform.

Shape and sanity invariants over the full Table I x Table II matrix at a
small scale, catching config/workload interactions the targeted tests
miss (classification on partitioned configs, part segmentation on
block-serial Crescent, etc.).
"""

import pytest

from repro.hw import AcceleratorSim, GPUModel, SOTA_CONFIGS
from repro.networks import WORKLOADS, get_workload

SCALE_FOR = {
    "PN++(c)": 1024, "PNXt(c)": 1024, "PN++(ps)": 2048, "PNXt(ps)": 2048,
    "PN++(s)": 4096, "PNXt(s)": 4096, "PVr(s)": 4096,
}


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
@pytest.mark.parametrize("platform", list(SOTA_CONFIGS))
class TestMatrix:
    def test_runs_and_accounts(self, workload, platform):
        spec = get_workload(workload)
        result = AcceleratorSim(SOTA_CONFIGS[platform]).run(spec, SCALE_FOR[workload])
        assert result.latency_s > 0
        assert result.energy_j > 0
        # Breakdown identities hold everywhere.
        assert result.point_op_seconds + result.mlp_seconds + result.other_seconds == (
            pytest.approx(result.latency_s)
        )
        assert sum(result.energy_breakdown().values()) == pytest.approx(result.energy_j)
        # Segmentation workloads must show interpolation; classification not.
        if spec.task == "cls":
            assert "interpolate" not in result.phases
        else:
            assert result.phases["interpolate"].seconds > 0


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_fractalcloud_never_slower_than_pointacc(workload):
    """FractalCloud wins on every Table I workload, even small-scale."""
    spec = get_workload(workload)
    n = SCALE_FOR[workload]
    fract = AcceleratorSim(SOTA_CONFIGS["FractalCloud"]).run(spec, n)
    pointacc = AcceleratorSim(SOTA_CONFIGS["PointAcc"]).run(spec, n)
    assert fract.latency_s < pointacc.latency_s
    assert fract.energy_j < pointacc.energy_j


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_gpu_runs_every_workload(workload):
    spec = get_workload(workload)
    result = GPUModel().run(spec, SCALE_FOR[workload])
    assert result.latency_s > 0
    assert 0 < result.point_op_seconds < result.latency_s
