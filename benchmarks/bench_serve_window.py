"""Extension bench — windowed micro-batching vs the per-cloud stream pool.

PR 3 proved whole-cloud fusion beats the worker pool on batches handed
over all at once; this bench proves the *serving* story: the same fused
kernels reached through the windowed micro-batcher
(:class:`repro.serve.WindowedServer` — collect up to ``W`` clouds or
``T`` ms, bin-pack, fuse, emit in order) against the unfused
``stream()`` pool path that PR 1 shipped for unbounded generators.

Acceptance bar (the ISSUE's):

- on seeded serving-shaped traffic (ragged ROI-crop sizes with exact
  duplicate frames sprinkled in) the windowed fused stream must beat the
  unfused 4-worker ``stream()`` path by >= 1.3x wall-clock;
- every timed configuration is asserted bit-identical per cloud between
  the two engines (the parity suite in ``tests/test_serve.py`` holds the
  serial-reference obligation).

Marked ``slow``: serving benches time wall-clock over hundreds of
clouds.  Run with ``pytest -m slow benchmarks/bench_serve_window.py``.
"""

import numpy as np
import pytest

from repro.analysis import format_table
from repro.runtime import BatchExecutor, PipelineSpec
from repro.serve import LoadSpec, WindowConfig, WindowedServer, generate

from _common import best_time, emit

pytestmark = pytest.mark.slow

PIPELINE = PipelineSpec(sample_ratio=0.25, radius=0.25, group_size=16)
WORKERS = 4

#: (label, LoadSpec, window, block size, acceptance bar)
MIXES = (
    (
        "roi crops",
        LoadSpec(clouds=128, min_points=64, max_points=256, dup_rate=0.15,
                 dup_window=12, seed=0),
        WindowConfig(max_clouds=32, max_wait=0.25),
        32,
        1.3,
    ),
    (
        "frames",
        LoadSpec(clouds=32, min_points=800, max_points=1600, dup_rate=0.1,
                 dup_window=6, seed=1),
        WindowConfig(max_clouds=8, max_wait=0.25),
        64,
        1.0,
    ),
)


def run_bench():
    rows = []
    speedups = {}
    for label, spec, window, block_size, bar in MIXES:
        clouds = list(generate(spec))
        pooled = BatchExecutor(
            "kdtree", block_size=block_size, max_workers=WORKERS, mode="thread"
        )
        fused = BatchExecutor(
            "kdtree", block_size=block_size, max_workers=WORKERS
        )

        def run_pool():
            return list(pooled.stream(iter(clouds), PIPELINE))

        def run_windowed():
            # The server is not closed here on purpose: closing it would
            # join the shared engine's pool between timing iterations; the
            # enclosing `with` below releases the engine once at the end.
            server = WindowedServer(fused, window)
            return list(server.serve(iter(clouds), PIPELINE))

        with pooled, fused:
            t_pool, res_pool = best_time(run_pool)
            t_serve, res_serve = best_time(run_windowed)

        # Micro-batching must not change a single index or feature bit.
        assert [r.index for r in res_serve] == [r.index for r in res_pool]
        for a, b in zip(res_pool, res_serve):
            assert np.array_equal(a.sampled, b.sampled)
            assert np.array_equal(a.neighbors, b.neighbors)
            assert np.array_equal(a.interpolated, b.interpolated)

        total = len(clouds)
        points = sum(len(c) for c in clouds)
        speedups[label] = (t_pool / t_serve, bar)
        rows.append([
            label, f"{spec.min_points}-{spec.max_points}", total,
            f"stream() pool ({WORKERS} thr)", f"{t_pool * 1e3:.0f}",
            f"{total / t_pool:.0f}", f"{points / t_pool / 1e3:.0f}K", "1.00x",
        ])
        rows.append([
            label, f"{spec.min_points}-{spec.max_points}", total,
            f"windowed fuse (W={window.max_clouds})", f"{t_serve * 1e3:.0f}",
            f"{total / t_serve:.0f}", f"{points / t_serve / 1e3:.0f}K",
            f"{t_pool / t_serve:.2f}x",
        ])

    table = format_table(
        ["mix", "sizes", "clouds", "engine", "ms / stream",
         "clouds / s", "points / s", "speedup"],
        rows,
        title="windowed micro-batching vs unfused stream() pool "
              "(kdtree, warm partition caches, duplicate frames in stream)",
    )
    return table, speedups


def test_serve_window(benchmark):
    table, speedups = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    emit("serve_window", table)
    # Acceptance: >= 1.3x over the per-cloud pool on the serving-shaped
    # ragged mix, and the windowed path never loses on big frames.
    for label, (speedup, bar) in speedups.items():
        assert speedup >= bar, (label, speedup, bar)
