"""Runtime: op-level IR and the workload compiler."""

from .compiler import clear_caches, compile_program
from .program import PartitionStats, Program, StagePlan

__all__ = ["PartitionStats", "Program", "StagePlan", "clear_caches", "compile_program"]
