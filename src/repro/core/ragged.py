"""Ragged CSR block layout and fused segment-wise point-op kernels.

The per-block loop (``block_*``) and the padded stack (``block_*_batched``)
are two extremes of the same trade-off: the loop pays Python/numpy dispatch
overhead once per block, the stack pays padding waste once per stack.  This
module adds the third representation the mid-size regime wants — a **CSR
(compressed sparse row) layout** of the whole partition:

- ``coords``: the cloud's coordinates permuted so every block's points are
  contiguous (block-major, matching DFT block order);
- ``offsets``: ``(num_blocks + 1,)`` int64 prefix sums delimiting each
  block's slice of the flat arrays;
- ``search_coords`` / ``search_offsets`` / ``search_perm``: the same CSR
  layout for the per-block *search spaces*;
- ``perm`` / ``owner``: the flat-slot → global-id permutation and its
  per-point inverse block map.

Kernels over this layout (:func:`ragged_fps`, :func:`ragged_ball_query`,
:func:`ragged_knn`, :func:`ragged_interpolate`) visit **all blocks at
once** with segment reductions (``np.ufunc.reduceat`` argmax/argmin tricks,
flat cumulative-sum hit ranking, k-pass segment extraction for top-k)
instead of either padding or looping.  There is no padding waste and — outside the
two documented per-block escapes below — no per-block Python work beyond
trace construction.

Bit-parity contract
-------------------

Every kernel returns indices (and features) **bit-identical** to its
serial reference in :mod:`repro.core.bppo`.  Two mechanisms guarantee it:

1. Selection logic (radius hits in candidate order, first-hit padding,
   nearest fallback, (distance, index) lexicographic top-k, first-tie
   argmax for FPS) is uniquely determined by the distance bits, so any
   faithful implementation agrees exactly.
2. Distance bits match because each block's distances are computed with
   the *same arithmetic* the reference would use: blocks in the
   elementwise regime (``centers × candidates <=``
   ``repro.geometry.ops._DIRECT_FORM_MAX``) are evaluated in one flat
   elementwise pass (elementwise ops are bit-independent of how the
   problem is sliced), while larger blocks call the reference
   :func:`repro.geometry.ops.pairwise_sq_dists` on exactly the reference
   shapes (one call per block — the first per-block escape).  Blocks whose
   work product exceeds :data:`RAGGED_BLOCK_MAX` take the serial per-block
   path wholesale (the second escape): they are dominated by their own
   GEMM/sort, so fusing buys nothing and the flat pair arrays would only
   cost memory.

``tests/test_batch_parity.py`` holds the proof obligations across all
partitioners, including exact-duplicate clouds and blocks smaller than
the group size.

Whole-cloud fusion
------------------

Blocks of *different clouds* are as independent as blocks of one cloud,
so :meth:`RaggedBlocks.concatenate` merges the layouts of several clouds
— equal-size or not — into one ragged problem (``block_group`` remembers
the owning cloud; ``group_point_offsets`` / ``group_block_offsets``
delimit each cloud's slice of the fused arrays).
:class:`repro.runtime.executor.BatchExecutor` uses this to run a whole
size-bucketed batch of serving clouds through a single kernel invocation
per pipeline stage; KNN widening consults only the block's own group, so
fusion never leaks candidates across clouds.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from ..geometry import ops as exact_ops
from ..geometry.ops import _DIRECT_FORM_MAX
from .blocks import BlockStructure
from .bppo import (
    BlockWork,
    OpTrace,
    _interpolate_from_neighbors,
    allocate_samples,
    block_gather,
)

__all__ = [
    "RAGGED_BLOCK_MAX",
    "RaggedBlocks",
    "ragged_of",
    "ragged_fps",
    "ragged_ball_query",
    "ragged_knn",
    "ragged_interpolate",
    "ragged_gather",
]

#: Per-block work-product ceiling (centres × search size) for the fused
#: flat path; blocks above it run the serial per-block reference inside
#: the ragged kernels — they are dominated by their own GEMM/sort, and the
#: flat pair arrays would only cost memory.  Set to 4x ``_STACK_SMALL``
#: (the mid-size window) and deliberately equal to
#: ``repro.geometry.ops._DIRECT_FORM_MAX``, so every fused block's
#: distances come out of the one flat elementwise pass (the per-block
#: ``pairwise_sq_dists`` escape in ``_pair_sq_dists`` stays as the
#: correctness net if the constants ever drift apart).  Like
#: ``_STACK_SMALL`` this tunes speed, never semantics: either route is
#: bit-identical.
RAGGED_BLOCK_MAX = 512


def _content_digest(coords: np.ndarray) -> bytes:
    """Exact float64 content fingerprint of a coordinate array.

    The partition cache keys structures at float32 resolution (any
    partition of the right index set is valid), so one structure may be
    replayed for float64-*distinct* clouds; the ragged layout, however,
    carries the coordinates themselves and must be rebuilt when they
    change.  Hashing at full precision keeps the memo safe.
    """
    digest = hashlib.blake2b(digest_size=16)
    digest.update(str(coords.shape).encode())
    digest.update(np.ascontiguousarray(coords, dtype=np.float64).tobytes())
    return digest.digest()


@dataclass
class RaggedBlocks:
    """CSR layout of one partition (or a fusion of several).

    Attributes:
        num_points: points across all grouped clouds.
        perm: ``(num_points,)`` global point id at each flat slot
            (block-major; slot ``offsets[b] + i`` is point ``i`` of block
            ``b`` in the block's own index order).
        offsets: ``(num_blocks + 1,)`` int64 block boundaries into the
            flat point arrays.
        coords: ``(num_points, 3)`` float64 permuted coordinates
            (``coords_global[perm]``) — each block's points contiguous.
        owner: ``(num_points,)`` global point id → owning block id.
        search_perm: concatenated per-block search-space global ids.
        search_offsets: ``(num_blocks + 1,)`` boundaries into the search
            arrays.
        search_coords: coordinates of ``search_perm`` (contiguous per
            block).
        block_group: ``(num_blocks,)`` owning problem id per block —
            all zeros for a single cloud; :meth:`concatenate` numbers the
            fused clouds.  KNN widening is confined to the block's group.
        num_groups: number of fused problems (1 for a single cloud).
        group_point_offsets: ``(num_groups + 1,)`` int64 boundaries of
            each fused cloud's points in the virtual concatenated cloud —
            cloud ``g`` owns global ids ``[group_point_offsets[g],
            group_point_offsets[g + 1])``.  The split-back tables of
            mixed-size fusion read global ids straight off this.
        group_block_offsets: ``(num_groups + 1,)`` int64 boundaries of
            each fused cloud's blocks in the fused block order.
    """

    num_points: int
    perm: np.ndarray
    offsets: np.ndarray
    coords: np.ndarray
    owner: np.ndarray
    search_perm: np.ndarray
    search_offsets: np.ndarray
    search_coords: np.ndarray
    block_group: np.ndarray
    num_groups: int = 1
    group_point_offsets: np.ndarray | None = None
    group_block_offsets: np.ndarray | None = None

    @property
    def num_blocks(self) -> int:
        return len(self.offsets) - 1

    @property
    def block_sizes(self) -> np.ndarray:
        return np.diff(self.offsets)

    @property
    def search_sizes(self) -> np.ndarray:
        return np.diff(self.search_offsets)

    @classmethod
    def from_structure(
        cls, structure: BlockStructure, coords: np.ndarray
    ) -> "RaggedBlocks":
        """Build the CSR layout of ``structure`` over ``coords``."""
        coords = np.asarray(coords, dtype=np.float64)
        sizes = structure.block_sizes
        offsets = np.zeros(structure.num_blocks + 1, dtype=np.int64)
        np.cumsum(sizes, out=offsets[1:])
        perm = (
            np.concatenate([b.indices for b in structure.blocks])
            if structure.num_blocks
            else np.empty(0, dtype=np.int64)
        )
        search_sizes = structure.search_sizes
        search_offsets = np.zeros(structure.num_blocks + 1, dtype=np.int64)
        np.cumsum(search_sizes, out=search_offsets[1:])
        search_perm = (
            np.concatenate(structure.search_spaces)
            if structure.num_blocks
            else np.empty(0, dtype=np.int64)
        )
        owner = np.empty(structure.num_points, dtype=np.int64)
        owner[perm] = np.repeat(np.arange(structure.num_blocks), sizes)
        return cls(
            num_points=structure.num_points,
            perm=perm,
            offsets=offsets,
            coords=coords[perm],
            owner=owner,
            search_perm=search_perm,
            search_offsets=search_offsets,
            search_coords=coords[search_perm],
            block_group=np.zeros(structure.num_blocks, dtype=np.int64),
            num_groups=1,
            group_point_offsets=np.array(
                [0, structure.num_points], dtype=np.int64
            ),
            group_block_offsets=np.array(
                [0, structure.num_blocks], dtype=np.int64
            ),
        )

    @classmethod
    def concatenate(cls, layouts: list["RaggedBlocks"]) -> "RaggedBlocks":
        """Fuse several single-cloud layouts into one ragged problem.

        The layouts may describe clouds of *different* sizes: cloud
        ``g``'s global point ids are shifted by the running point total,
        so the fused problem indexes one virtual concatenated cloud;
        ``block_group`` records the source cloud of every block, and
        ``group_point_offsets`` / ``group_block_offsets`` carry the
        per-cloud boundaries the executor's split-back needs.
        """
        if not layouts:
            raise ValueError("need at least one layout to concatenate")
        point_offsets = np.zeros(len(layouts) + 1, dtype=np.int64)
        np.cumsum([rb.num_points for rb in layouts], out=point_offsets[1:])
        perm = np.concatenate([rb.perm + off for rb, off in zip(layouts, point_offsets)])
        search_perm = np.concatenate(
            [rb.search_perm + off for rb, off in zip(layouts, point_offsets)]
        )
        block_counts = [rb.num_blocks for rb in layouts]
        offsets = np.zeros(sum(block_counts) + 1, dtype=np.int64)
        np.cumsum(np.concatenate([rb.block_sizes for rb in layouts]), out=offsets[1:])
        search_offsets = np.zeros(sum(block_counts) + 1, dtype=np.int64)
        np.cumsum(
            np.concatenate([rb.search_sizes for rb in layouts]),
            out=search_offsets[1:],
        )
        block_offsets = np.zeros(len(layouts) + 1, dtype=np.int64)
        np.cumsum(block_counts, out=block_offsets[1:])
        owner = np.concatenate(
            [rb.owner + boff for rb, boff in zip(layouts, block_offsets)]
        )
        return cls(
            num_points=int(point_offsets[-1]),
            perm=perm,
            offsets=offsets,
            coords=np.concatenate([rb.coords for rb in layouts]),
            owner=owner,
            search_perm=search_perm,
            search_offsets=search_offsets,
            search_coords=np.concatenate([rb.search_coords for rb in layouts]),
            block_group=np.repeat(np.arange(len(layouts)), block_counts),
            num_groups=len(layouts),
            group_point_offsets=point_offsets,
            group_block_offsets=block_offsets,
        )


def ragged_of(structure: BlockStructure, coords: np.ndarray) -> RaggedBlocks:
    """The (memoized) ragged layout of ``structure`` over ``coords``.

    The layout is attached to the structure instance, so cached partitions
    (:class:`repro.runtime.cache.PartitionCache`) carry their ragged
    layout along for free.  Revalidation is two-tier: the common case —
    the *same array object* across the ops of one pipeline pass — is an
    identity check; a different array revalidates by full-precision
    content digest, which guards against replaying a layout for a
    float32-equal but float64-distinct cloud (the partition cache keys
    structures at float32).  The identity shortcut assumes callers do not
    mutate a cloud in place between ops on it — the same contract every
    content-keyed cache here already relies on.
    """
    coords = np.asarray(coords, dtype=np.float64)
    memo = getattr(structure, "_ragged", None)
    if memo is not None:
        memo_coords, memo_digest, layout = memo
        if memo_coords is coords or memo_digest == _content_digest(coords):
            return layout
    layout = RaggedBlocks.from_structure(structure, coords)
    structure._ragged = (coords, _content_digest(coords), layout)
    return layout


# ---------------------------------------------------------------------------
# Segment primitives
# ---------------------------------------------------------------------------


def _segment_first_argmin(values: np.ndarray, starts: np.ndarray) -> np.ndarray:
    """Per-segment flat position of the first minimum (``np.argmin`` rule)."""
    seg_min = np.minimum.reduceat(values, starts)
    owner = np.repeat(
        np.arange(len(starts)), np.diff(np.append(starts, len(values)))
    )
    slots = np.arange(len(values))
    candidates = np.where(values == seg_min[owner], slots, len(values))
    return np.minimum.reduceat(candidates, starts)


def _ragged_arange(counts: np.ndarray, starts: np.ndarray | None = None) -> np.ndarray:
    """Concatenation of ``arange(c) + s`` for each count/start pair."""
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    ends = np.cumsum(counts)
    local = np.arange(total) - np.repeat(ends - counts, counts)
    if starts is None:
        return local
    return local + np.repeat(np.asarray(starts, dtype=np.int64), counts)


def _group_centers(
    rb: RaggedBlocks, center_indices: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sort centres by owning block.

    Returns ``(order, counts, c_offsets)`` — positions into
    ``center_indices`` in (block, position) order, per-block centre
    counts, and their prefix sums.  Matches the stable grouping of
    ``bppo._group_centers_by_block`` (ascending positions inside each
    block) without materialising per-block Python lists.
    """
    center_owner = rb.owner[np.asarray(center_indices, dtype=np.int64)]
    order = np.argsort(center_owner, kind="stable")
    counts = np.bincount(center_owner, minlength=rb.num_blocks).astype(np.int64)
    c_offsets = np.zeros(rb.num_blocks + 1, dtype=np.int64)
    np.cumsum(counts, out=c_offsets[1:])
    return order, counts, c_offsets


# ---------------------------------------------------------------------------
# FPS
# ---------------------------------------------------------------------------


def fps_on_layout(rb: RaggedBlocks, quotas: np.ndarray) -> np.ndarray:
    """Farthest-point-sample every block of a ragged layout at once.

    One greedy recurrence over the flat point array replaces both the
    per-block Python loop and the padded stack: each iteration finds every
    still-active block's first-position argmax with two segment
    reductions, then updates the flat min-distance array against each
    block's own new selection (slot ``i`` only ever measures against
    selections of its owning block, so blocks — and fused clouds — remain
    exactly independent).

    Returns global point indices grouped by block in block order, each
    block's picks in selection order — the exact layout of
    :func:`repro.core.bppo.block_fps`.
    """
    quotas = np.asarray(quotas, dtype=np.int64)
    sizes = rb.block_sizes
    out_offsets = np.zeros(rb.num_blocks + 1, dtype=np.int64)
    np.cumsum(quotas, out=out_offsets[1:])
    out = np.empty(int(out_offsets[-1]), dtype=np.int64)
    if out.size == 0:
        return out

    starts = rb.offsets[:-1]
    owner_flat = np.repeat(np.arange(rb.num_blocks), sizes)
    pts = rb.coords
    active = quotas > 0
    out[out_offsets[:-1][active]] = rb.perm[starts[active]]

    max_quota = int(quotas.max())
    if max_quota == 1:
        return out
    # Same recurrence as farthest_point_sample, vectorized over blocks:
    # elementwise subtract/square/sum give identical bits no matter how
    # the flat array is sliced, and the segment argmax replicates
    # np.argmax's first-tie rule.
    min_d2 = ((pts - pts[starts][owner_flat]) ** 2).sum(axis=1)
    slots = np.arange(len(pts))
    sentinel = len(pts)
    for i in range(1, max_quota):
        # Inline segment argmax (first-tie, np.argmax's rule): per-block
        # max, then the smallest slot attaining it.
        seg_max = np.maximum.reduceat(min_d2, starts)
        candidates = np.where(min_d2 == seg_max[owner_flat], slots, sentinel)
        picked = np.minimum.reduceat(candidates, starts)
        live = quotas > i
        out[(out_offsets[:-1] + i)[live]] = rb.perm[picked[live]]
        d2 = ((pts - pts[picked][owner_flat]) ** 2).sum(axis=1)
        np.minimum(min_d2, d2, out=min_d2)
    return out


def ragged_fps(
    structure: BlockStructure,
    coords: np.ndarray,
    num_samples: int,
) -> tuple[np.ndarray, OpTrace]:
    """Ragged :func:`~repro.core.bppo.block_fps`: same indices, same trace."""
    coords = np.asarray(coords, dtype=np.float64)
    quotas = allocate_samples(structure.block_sizes, num_samples, clamp=True)
    trace = OpTrace(kind="fps")
    for block_id, (block, quota) in enumerate(zip(structure.blocks, quotas)):
        trace.blocks.append(
            BlockWork(
                block_id=block_id,
                n_points=len(block),
                n_search=len(block),
                n_centers=int(quota),
                n_outputs=int(quota),
            )
        )
    rb = ragged_of(structure, coords)
    return fps_on_layout(rb, quotas), trace


# ---------------------------------------------------------------------------
# Flat pair machinery shared by ball query and KNN
# ---------------------------------------------------------------------------


def _pair_layout(
    m_counts: np.ndarray, s_counts: np.ndarray, cand_csr_starts: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Index arrays of the centre-major flat pair space of selected blocks.

    Given per-block centre counts ``m`` and candidate counts ``s``, the
    pair space enumerates, block by block, every centre's candidates in
    candidate order (exactly the row-major layout of the reference's
    per-block ``(m, s)`` distance matrix).  Built from repeats and one
    ragged arange — no per-pair division.

    Returns ``(center_of_pair, cand_local, cand_flat, pairs_per_center,
    pair_offsets)``: flat centre row per pair, candidate position within
    the block's candidate array, candidate position within the CSR
    candidate-coordinate array (``cand_csr_starts`` maps each selected
    block to its slice), per-centre pair counts, and per-block pair
    boundaries.
    """
    pair_offsets = np.zeros(len(m_counts) + 1, dtype=np.int64)
    np.cumsum(m_counts * s_counts, out=pair_offsets[1:])
    pairs_per_center = np.repeat(s_counts, m_counts)
    center_of_pair = np.repeat(
        np.arange(len(pairs_per_center)), pairs_per_center
    )
    cand_local = _ragged_arange(pairs_per_center)
    block_of_center = np.repeat(np.arange(len(m_counts)), m_counts)
    cand_flat = cand_local + np.repeat(
        cand_csr_starts[block_of_center], pairs_per_center
    )
    return center_of_pair, cand_local, cand_flat, pairs_per_center, pair_offsets


def _pair_sq_dists(
    center_coords: np.ndarray,
    cand_coords_csr: np.ndarray,
    cand_csr_starts: np.ndarray,
    m_counts: np.ndarray,
    s_counts: np.ndarray,
    cand_flat: np.ndarray,
    center_of_pair: np.ndarray,
    pairs_per_center: np.ndarray,
    pair_offsets: np.ndarray,
) -> np.ndarray:
    """Per-pair squared distances matching the reference bits per block.

    Blocks in the elementwise regime (``m × s <= _DIRECT_FORM_MAX``) are
    computed in one flat elementwise pass over their pairs, one
    coordinate column at a time: ``(x² + y²) + z²`` accumulates in
    exactly the order ``((a - b) ** 2).sum(axis=-1)`` reduces a length-3
    axis, so the bits equal the reference direct form while the runtime
    stays on cheap 1-D repeats/gathers instead of ``(P, 3)`` row
    gathers.  Larger blocks call
    :func:`repro.geometry.ops.pairwise_sq_dists` on exactly the
    reference shapes — one compound numpy call per block, the only
    per-block Python work in the fused path (dead code while
    ``RAGGED_BLOCK_MAX == _DIRECT_FORM_MAX``, kept as the correctness
    net should the constants drift).
    """
    products = m_counts * s_counts
    direct = products <= _DIRECT_FORM_MAX
    if direct.all():
        d2 = None
        for axis in range(3):
            a = np.repeat(
                np.ascontiguousarray(center_coords[:, axis]), pairs_per_center
            )
            a -= np.ascontiguousarray(cand_coords_csr[:, axis])[cand_flat]
            a *= a
            d2 = a if d2 is None else d2 + a
        return d2
    d2 = np.empty(int(pair_offsets[-1]), dtype=np.float64)
    pair_block = np.repeat(np.arange(len(m_counts)), m_counts * s_counts)
    direct_pairs = direct[pair_block]
    if direct_pairs.any():
        idx = np.nonzero(direct_pairs)[0]
        a = center_coords[center_of_pair[idx]]
        b = cand_coords_csr[cand_flat[idx]]
        d2[idx] = ((a - b) ** 2).sum(axis=1)
    m_offsets = np.zeros(len(m_counts) + 1, dtype=np.int64)
    np.cumsum(m_counts, out=m_offsets[1:])
    for b in np.nonzero(~direct)[0]:
        centers_b = center_coords[m_offsets[b]: m_offsets[b + 1]]
        cands_b = cand_coords_csr[
            cand_csr_starts[b]: cand_csr_starts[b] + s_counts[b]
        ]
        d2[pair_offsets[b]: pair_offsets[b + 1]] = exact_ops.pairwise_sq_dists(
            centers_b, cands_b
        ).ravel()
    return d2


# ---------------------------------------------------------------------------
# Ball query
# ---------------------------------------------------------------------------


def ball_query_on_layout(
    rb: RaggedBlocks,
    coords: np.ndarray,
    center_indices: np.ndarray,
    radius: float,
    num: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Ball query over every block of a ragged layout at once.

    Returns ``(neighbors, center_counts)`` — ``(m, num)`` global indices
    aligned row-for-row with ``center_indices`` plus the per-block centre
    counts (for trace construction).
    """
    if radius <= 0:
        raise ValueError(f"radius must be positive, got {radius}")
    if num < 1:
        raise ValueError(f"num must be >= 1, got {num}")
    coords = np.asarray(coords, dtype=np.float64)
    center_indices = np.asarray(center_indices, dtype=np.int64)
    neighbors = np.empty((len(center_indices), num), dtype=np.int64)
    order, counts, c_offsets = _group_centers(rb, center_indices)

    s_sizes = rb.search_sizes
    products = counts * s_sizes
    populated = counts > 0
    fused_mask = populated & (products <= RAGGED_BLOCK_MAX)
    # Oversize blocks: dominated by their own GEMM — serial reference path.
    for b in np.nonzero(populated & ~fused_mask)[0]:
        rows = order[c_offsets[b]: c_offsets[b + 1]]
        space = rb.search_perm[rb.search_offsets[b]: rb.search_offsets[b + 1]]
        local = exact_ops.ball_query(
            coords[center_indices[rows]],
            rb.search_coords[rb.search_offsets[b]: rb.search_offsets[b + 1]],
            radius,
            num,
        )
        neighbors[rows] = space[local]

    fused = np.nonzero(fused_mask)[0]
    if len(fused):
        mm = counts[fused]
        ss = s_sizes[fused]
        rows_cat = order[_ragged_arange(mm, c_offsets[fused])]
        center_coords = coords[center_indices[rows_cat]]
        starts = rb.search_offsets[fused]
        center_of_pair, cand_local, cand_flat, pairs_per_center, pair_offsets = (
            _pair_layout(mm, ss, starts)
        )
        d2 = _pair_sq_dists(
            center_coords, rb.search_coords, starts,
            mm, ss, cand_flat, center_of_pair, pairs_per_center, pair_offsets,
        )
        local = _select_ball_neighbors_flat(
            d2, cand_local, center_of_pair, pairs_per_center,
            float(radius) ** 2, num,
        )
        block_of_center = np.repeat(fused, mm)
        neighbors[rows_cat] = rb.search_perm[
            rb.search_offsets[block_of_center][:, None] + local
        ]
    return neighbors, counts


def _select_ball_neighbors_flat(
    d2: np.ndarray,
    cand_local: np.ndarray,
    center_of_pair: np.ndarray,
    pairs_per_center: np.ndarray,
    r2: float,
    num: int,
) -> np.ndarray:
    """PointNet++ neighbour selection over a flat ragged pair space.

    Implements the same decision procedure as
    ``repro.geometry.ops._select_ball_neighbors`` — in-radius candidates
    in candidate order, first hit pads short rows, hitless centres fall
    back to the first nearest candidate — with flat cumulative-sum hit
    ranking instead of a per-row sort, so the result is bit-identical
    given identical distance bits.
    """
    num_centers = len(pairs_per_center)
    c_starts = np.zeros(num_centers, dtype=np.int64)
    np.cumsum(pairs_per_center[:-1], out=c_starts[1:])

    hit = d2 <= r2
    csum = np.cumsum(hit)
    before = np.where(c_starts > 0, csum[c_starts - 1], 0)
    rank = (csum - hit) - np.repeat(before, pairs_per_center)
    hits_per_center = csum[c_starts + pairs_per_center - 1] - before

    out = np.full((num_centers, num), -1, dtype=np.int64)
    take = hit & (rank < num)
    out[center_of_pair[take], rank[take]] = cand_local[take]

    no_hit = hits_per_center == 0
    first = out[:, 0]
    if no_hit.any():
        nearest = cand_local[_segment_first_argmin(d2, c_starts)]
        first = np.where(no_hit, nearest, first)
    cols = np.arange(num)
    return np.where(cols[None, :] < hits_per_center[:, None], out, first[:, None])


def ragged_ball_query(
    structure: BlockStructure,
    coords: np.ndarray,
    center_indices: np.ndarray,
    radius: float,
    num: int,
) -> tuple[np.ndarray, OpTrace]:
    """Ragged :func:`~repro.core.bppo.block_ball_query`: identical output."""
    rb = ragged_of(structure, coords)
    neighbors, counts = ball_query_on_layout(
        rb, coords, center_indices, radius, num
    )
    trace = OpTrace(kind="ball_query")
    search_sizes = rb.search_sizes
    for block_id, block in enumerate(structure.blocks):
        trace.blocks.append(
            BlockWork(
                block_id=block_id,
                n_points=len(block),
                n_search=int(search_sizes[block_id]),
                n_centers=int(counts[block_id]),
                n_outputs=int(counts[block_id]) * num,
            )
        )
    return neighbors, trace


# ---------------------------------------------------------------------------
# KNN / interpolation
# ---------------------------------------------------------------------------


def knn_on_layout(
    rb: RaggedBlocks,
    coords: np.ndarray,
    center_indices: np.ndarray,
    candidate_indices: np.ndarray,
    k: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """KNN over a candidate subset for every block of a ragged layout.

    The per-block candidate sets are the CSR compaction of the search
    spaces against the candidate mask; blocks left with fewer than ``k``
    candidates widen to their *group's* full candidate set (the block's
    own cloud in a fused problem) and run the serial reference path, as
    does any block above :data:`RAGGED_BLOCK_MAX`.

    Returns ``(neighbors, center_counts, cand_counts, widened)``; the
    last three are per-block arrays for trace construction
    (``cand_counts`` is post-widening, matching the serial trace).
    """
    coords = np.asarray(coords, dtype=np.float64)
    center_indices = np.asarray(center_indices, dtype=np.int64)
    candidate_indices = np.asarray(candidate_indices, dtype=np.int64)
    if len(candidate_indices) < k:
        raise ValueError(
            f"need at least k={k} candidates, got {len(candidate_indices)}"
        )

    in_candidates = np.zeros(rb.num_points, dtype=bool)
    in_candidates[candidate_indices] = True

    # CSR compaction of search spaces down to the candidate subset; the
    # mask preserves search-space order, matching the serial
    # ``space[in_candidates[space]]`` per block.
    cand_mask = in_candidates[rb.search_perm]
    cand_sizes = np.add.reduceat(cand_mask.astype(np.int64), rb.search_offsets[:-1])
    cand_starts = np.zeros(rb.num_blocks + 1, dtype=np.int64)
    np.cumsum(cand_sizes, out=cand_starts[1:])
    cand_perm = rb.search_perm[cand_mask]
    cand_coords = rb.search_coords[cand_mask]

    widened = cand_sizes < k
    order, counts, c_offsets = _group_centers(rb, center_indices)
    neighbors = np.empty((len(center_indices), k), dtype=np.int64)

    # Widened blocks search their group's full candidate set (serial path;
    # rare for sane thresholds).  Group the candidates only when needed.
    populated = counts > 0
    if widened.any():
        if rb.num_groups == 1:
            group_cands = {0: candidate_indices}
        else:
            cand_groups = rb.block_group[rb.owner[candidate_indices]]
            group_cands = {
                g: candidate_indices[cand_groups == g]
                for g in np.unique(cand_groups)
            }
        for b in np.nonzero(widened & populated)[0]:
            rows = order[c_offsets[b]: c_offsets[b + 1]]
            cands = group_cands[int(rb.block_group[b])]
            local = exact_ops.knn_search(
                coords[center_indices[rows]], coords[cands], k
            )
            neighbors[rows] = cands[local]

    products = counts * cand_sizes
    fused_mask = populated & ~widened & (products <= RAGGED_BLOCK_MAX)
    for b in np.nonzero(populated & ~widened & ~fused_mask)[0]:
        rows = order[c_offsets[b]: c_offsets[b + 1]]
        cands_b = cand_perm[cand_starts[b]: cand_starts[b + 1]]
        local = exact_ops.knn_search(
            coords[center_indices[rows]],
            cand_coords[cand_starts[b]: cand_starts[b + 1]],
            k,
        )
        neighbors[rows] = cands_b[local]

    fused = np.nonzero(fused_mask)[0]
    if len(fused):
        mm = counts[fused]
        cc = cand_sizes[fused]
        rows_cat = order[_ragged_arange(mm, c_offsets[fused])]
        center_coords = coords[center_indices[rows_cat]]
        starts = cand_starts[fused]
        center_of_pair, cand_local, cand_flat, pairs_per_center, pair_offsets = (
            _pair_layout(mm, cc, starts)
        )
        d2 = _pair_sq_dists(
            center_coords, cand_coords, starts,
            mm, cc, cand_flat, center_of_pair, pairs_per_center, pair_offsets,
        )
        local = _select_knn_flat(d2, cand_local, center_of_pair, pairs_per_center, k)
        block_of_center = np.repeat(fused, mm)
        neighbors[rows_cat] = cand_perm[
            cand_starts[block_of_center][:, None] + local
        ]

    # Trace counts: widened blocks report their group's candidate count.
    trace_cands = cand_sizes.copy()
    if widened.any():
        if rb.num_groups == 1:
            trace_cands[widened] = len(candidate_indices)
        else:
            group_totals = np.bincount(
                rb.block_group[rb.owner[candidate_indices]],
                minlength=rb.num_groups,
            )
            trace_cands[widened] = group_totals[rb.block_group[widened]]
    return neighbors, counts, trace_cands, widened


def _select_knn_flat(
    d2: np.ndarray,
    cand_local: np.ndarray,
    center_of_pair: np.ndarray,
    pairs_per_center: np.ndarray,
    k: int,
) -> np.ndarray:
    """Top-``k`` by (distance, candidate order) over a flat pair space.

    Implements the exact (distance, index) lexicographic rule of
    ``repro.geometry.ops._knn_from_dists``, so the result is bit-identical
    given identical distance bits.  All ``k`` neighbours come out of one
    fused sweep: the pairs scatter into a dense ``(centres, max_width)``
    matrix (one vectorised store — the column *is* the local candidate
    index), padded with ``+inf`` for centres narrower than the widest,
    and one stable row argsort extracts every rank at once.  A stable
    sort on distance keeps equal-distance candidates in column order,
    which is precisely the lexicographic tie-break, and the ``inf`` pad
    sorts behind every real candidate.  Every centre must own at least
    ``k`` pairs (guaranteed: widened blocks never reach this path), so
    the pad can never be selected.
    """
    num_centers = len(pairs_per_center)
    width = int(pairs_per_center.max()) if num_centers else 0
    dense = np.full((num_centers, width), np.inf)
    dense[center_of_pair, cand_local] = d2
    order = np.argsort(dense, axis=1, kind="stable")
    return np.ascontiguousarray(order[:, :k])


def ragged_knn(
    structure: BlockStructure,
    coords: np.ndarray,
    center_indices: np.ndarray,
    candidate_indices: np.ndarray,
    k: int,
) -> tuple[np.ndarray, OpTrace]:
    """Ragged :func:`~repro.core.bppo.block_knn`: identical neighbours,
    widening decisions, and trace."""
    rb = ragged_of(structure, coords)
    neighbors, counts, cands, widened = knn_on_layout(
        rb, coords, center_indices, candidate_indices, k
    )
    trace = OpTrace(kind="knn")
    for block_id, block in enumerate(structure.blocks):
        trace.blocks.append(
            BlockWork(
                block_id=block_id,
                n_points=len(block),
                n_search=int(cands[block_id]),
                n_centers=int(counts[block_id]),
                n_outputs=int(counts[block_id]) * k,
                widened=bool(widened[block_id]),
            )
        )
    return neighbors, trace


def ragged_interpolate(
    structure: BlockStructure,
    coords: np.ndarray,
    center_indices: np.ndarray,
    candidate_indices: np.ndarray,
    candidate_features: np.ndarray,
    k: int = 3,
) -> tuple[np.ndarray, OpTrace]:
    """Ragged :func:`~repro.core.bppo.block_interpolate`: bit-identical
    features (same KNN, same inverse-distance blend)."""
    candidate_features = np.asarray(candidate_features, dtype=np.float64)
    if len(candidate_features) != len(candidate_indices):
        raise ValueError("candidate_features rows must align with candidate_indices")
    neighbors, trace = ragged_knn(
        structure, coords, center_indices, candidate_indices, k
    )
    trace.kind = "interpolate"
    features = _interpolate_from_neighbors(
        structure.num_points, coords, center_indices, candidate_indices,
        candidate_features, neighbors,
    )
    return features, trace


def ragged_gather(
    structure: BlockStructure,
    features: np.ndarray,
    neighbor_indices: np.ndarray,
    center_indices: np.ndarray,
) -> tuple[np.ndarray, OpTrace]:
    """Gathering is already one fancy-indexing pass; alias the serial op
    so the kernel registry is complete for every pipeline stage."""
    return block_gather(structure, features, neighbor_indices, center_indices)
