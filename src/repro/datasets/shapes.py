"""Parametric object-surface generators (ModelNet40-like substitute).

The paper's object-level workloads (classification on ModelNet40) only
need point clouds whose density follows object *shape* — the property the
Fractal method exploits ("point distributions often align with the
object's geometric shape due to consistent sampling frequency", §III-B).
These generators sample points on parametric surfaces, then apply a
view-direction density bias so one side of the object is denser than the
other (as a real scanner produces), plus sensor noise.

Ten shape classes give a ModelNet-style classification task that a small
PNN can learn, letting the accuracy experiments measure real degradation
when point operations are approximated.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..geometry import PointCloud

__all__ = ["SHAPE_CLASSES", "sample_shape", "make_classification_dataset"]


def _unit(v: np.ndarray) -> np.ndarray:
    return v / np.linalg.norm(v)


def _sphere(n: int, rng: np.random.Generator) -> np.ndarray:
    v = rng.normal(size=(n, 3))
    return v / np.linalg.norm(v, axis=1, keepdims=True)


def _cube(n: int, rng: np.random.Generator) -> np.ndarray:
    # Pick a face, then a uniform point on it.
    face = rng.integers(0, 6, size=n)
    uv = rng.uniform(-1.0, 1.0, size=(n, 2))
    pts = np.empty((n, 3))
    axis = face // 2
    sign = np.where(face % 2 == 0, -1.0, 1.0)
    for a in range(3):
        mask = axis == a
        others = [d for d in range(3) if d != a]
        pts[mask, a] = sign[mask]
        pts[mask, others[0]] = uv[mask, 0]
        pts[mask, others[1]] = uv[mask, 1]
    return pts


def _cylinder(n: int, rng: np.random.Generator) -> np.ndarray:
    # Lateral surface plus two caps, area-weighted (r=0.5, h=2).
    r, h = 0.5, 2.0
    lateral_area = 2 * np.pi * r * h
    cap_area = np.pi * r * r
    p_lateral = lateral_area / (lateral_area + 2 * cap_area)
    theta = rng.uniform(0, 2 * np.pi, size=n)
    on_side = rng.uniform(size=n) < p_lateral
    pts = np.empty((n, 3))
    pts[on_side, 0] = r * np.cos(theta[on_side])
    pts[on_side, 1] = r * np.sin(theta[on_side])
    pts[on_side, 2] = rng.uniform(-h / 2, h / 2, size=int(on_side.sum()))
    caps = ~on_side
    rad = r * np.sqrt(rng.uniform(size=int(caps.sum())))
    pts[caps, 0] = rad * np.cos(theta[caps])
    pts[caps, 1] = rad * np.sin(theta[caps])
    pts[caps, 2] = np.where(rng.uniform(size=int(caps.sum())) < 0.5, -h / 2, h / 2)
    return pts


def _cone(n: int, rng: np.random.Generator) -> np.ndarray:
    # Slanted surface of a cone, apex up (r=1 at z=0, apex at z=2).
    u = np.sqrt(rng.uniform(size=n))  # area-uniform along the slope
    theta = rng.uniform(0, 2 * np.pi, size=n)
    r = 1.0 - u
    return np.stack([r * np.cos(theta), r * np.sin(theta), 2.0 * u], axis=1)


def _torus(n: int, rng: np.random.Generator) -> np.ndarray:
    big_r, small_r = 1.0, 0.35
    # Rejection on the major angle keeps area-uniform sampling.
    out = np.empty((0, 3))
    while len(out) < n:
        m = 2 * (n - len(out)) + 16
        u = rng.uniform(0, 2 * np.pi, size=m)
        v = rng.uniform(0, 2 * np.pi, size=m)
        keep = rng.uniform(size=m) < (big_r + small_r * np.cos(v)) / (big_r + small_r)
        u, v = u[keep], v[keep]
        pts = np.stack(
            [
                (big_r + small_r * np.cos(v)) * np.cos(u),
                (big_r + small_r * np.cos(v)) * np.sin(u),
                small_r * np.sin(v),
            ],
            axis=1,
        )
        out = np.concatenate([out, pts])
    return out[:n]


def _pyramid(n: int, rng: np.random.Generator) -> np.ndarray:
    # Four triangular faces + square base.
    apex = np.array([0.0, 0.0, 1.5])
    base = np.array(
        [[-1, -1, 0], [1, -1, 0], [1, 1, 0], [-1, 1, 0]], dtype=np.float64
    )
    tri_faces = [(base[i], base[(i + 1) % 4], apex) for i in range(4)]
    face_choice = rng.integers(0, 5, size=n)
    pts = np.empty((n, 3))
    for f in range(4):
        mask = face_choice == f
        m = int(mask.sum())
        a, b, c = tri_faces[f]
        r1 = np.sqrt(rng.uniform(size=m))
        r2 = rng.uniform(size=m)
        pts[mask] = (
            (1 - r1)[:, None] * a
            + (r1 * (1 - r2))[:, None] * b
            + (r1 * r2)[:, None] * c
        )
    mask = face_choice == 4
    uv = rng.uniform(-1, 1, size=(int(mask.sum()), 2))
    pts[mask] = np.stack([uv[:, 0], uv[:, 1], np.zeros(len(uv))], axis=1)
    return pts


def _capsule(n: int, rng: np.random.Generator) -> np.ndarray:
    # Cylinder with hemispherical ends.
    r, h = 0.4, 1.4
    side_area = 2 * np.pi * r * h
    cap_area = 4 * np.pi * r * r  # two hemispheres = one sphere
    p_side = side_area / (side_area + cap_area)
    pts = np.empty((n, 3))
    on_side = rng.uniform(size=n) < p_side
    theta = rng.uniform(0, 2 * np.pi, size=n)
    m = int(on_side.sum())
    pts[on_side] = np.stack(
        [r * np.cos(theta[on_side]), r * np.sin(theta[on_side]),
         rng.uniform(-h / 2, h / 2, size=m)],
        axis=1,
    )
    caps = ~on_side
    sphere = _sphere(int(caps.sum()), rng) * r
    sphere[:, 2] = np.abs(sphere[:, 2]) * np.sign(rng.uniform(-1, 1, size=len(sphere)))
    sphere[:, 2] += np.where(sphere[:, 2] >= 0, h / 2, -h / 2)
    pts[caps] = sphere
    return pts


def _disk(n: int, rng: np.random.Generator) -> np.ndarray:
    rad = np.sqrt(rng.uniform(size=n))
    theta = rng.uniform(0, 2 * np.pi, size=n)
    z = rng.uniform(-0.02, 0.02, size=n)
    return np.stack([rad * np.cos(theta), rad * np.sin(theta), z], axis=1)


def _helix(n: int, rng: np.random.Generator) -> np.ndarray:
    t = rng.uniform(0, 4 * np.pi, size=n)
    tube = rng.normal(scale=0.08, size=(n, 3))
    core = np.stack([np.cos(t), np.sin(t), t / (2 * np.pi) - 1.0], axis=1)
    return core + tube


def _cross(n: int, rng: np.random.Generator) -> np.ndarray:
    # Two orthogonal bars (box surfaces), like a plus sign.
    bar = rng.integers(0, 2, size=n)
    pts = _cube(n, rng)
    long_axis = np.where(bar == 0, 0, 1)
    for i in range(n):
        scale = np.full(3, 0.25)
        scale[long_axis[i]] = 1.0
        pts[i] *= scale
    return pts


SHAPE_CLASSES: dict[str, Callable[[int, np.random.Generator], np.ndarray]] = {
    "sphere": _sphere,
    "cube": _cube,
    "cylinder": _cylinder,
    "cone": _cone,
    "torus": _torus,
    "pyramid": _pyramid,
    "capsule": _capsule,
    "disk": _disk,
    "helix": _helix,
    "cross": _cross,
}

_CLASS_NAMES = list(SHAPE_CLASSES)


def _view_bias(points: np.ndarray, n_keep: int, rng: np.random.Generator) -> np.ndarray:
    """Resample so points facing a random viewpoint are denser.

    Mimics single-viewpoint scanning: weight each candidate by how much
    it faces the view direction, then draw ``n_keep`` without replacement.
    """
    view = _unit(rng.normal(size=3))
    centered = points - points.mean(axis=0)
    norms = np.linalg.norm(centered, axis=1)
    norms[norms == 0] = 1.0
    facing = (centered / norms[:, None]) @ view
    weights = np.clip(0.55 + 0.45 * facing, 0.05, None)
    weights = weights / weights.sum()
    idx = rng.choice(len(points), size=n_keep, replace=False, p=weights)
    return points[idx]


def sample_shape(
    name: str,
    num_points: int,
    rng: np.random.Generator,
    *,
    noise: float = 0.01,
    view_biased: bool = True,
) -> PointCloud:
    """Sample one object of class ``name`` with scan-like density.

    Args:
        name: a key of :data:`SHAPE_CLASSES`.
        num_points: output size.
        rng: numpy Generator (determinism is the caller's seed).
        noise: Gaussian sensor-noise sigma (in normalised units).
        view_biased: apply the single-viewpoint density bias.

    Returns:
        A normalised :class:`PointCloud` with ``class_id`` set.
    """
    if name not in SHAPE_CLASSES:
        raise ValueError(f"unknown shape {name!r}; expected one of {_CLASS_NAMES}")
    if num_points < 1:
        raise ValueError(f"num_points must be >= 1, got {num_points}")
    generator = SHAPE_CLASSES[name]
    oversample = max(2 * num_points, num_points + 64) if view_biased else num_points
    points = generator(oversample, rng)
    if view_biased:
        points = _view_bias(points, num_points, rng)
    # Random rigid pose + anisotropic scale jitter (dataset augmentation).
    scale = rng.uniform(0.8, 1.2, size=3)
    points = points * scale
    angle = rng.uniform(0, 2 * np.pi)
    c, s = np.cos(angle), np.sin(angle)
    rot = np.array([[c, -s, 0], [s, c, 0], [0, 0, 1]])
    points = points @ rot.T
    points = points + rng.normal(scale=noise, size=points.shape)
    cloud = PointCloud(points.astype(np.float32), class_id=_CLASS_NAMES.index(name))
    return cloud.normalized()


def make_classification_dataset(
    num_clouds: int,
    points_per_cloud: int,
    seed: int = 0,
    *,
    noise: float = 0.01,
) -> list[PointCloud]:
    """A balanced ModelNet-like dataset of ``num_clouds`` labelled objects."""
    rng = np.random.default_rng(seed)
    clouds = []
    for i in range(num_clouds):
        name = _CLASS_NAMES[i % len(_CLASS_NAMES)]
        clouds.append(sample_shape(name, points_per_cloud, rng, noise=noise))
    return clouds
