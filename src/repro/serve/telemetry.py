"""Live serving telemetry: rolling latency percentiles and window health.

The serving loop is judged on tail latency, not mean throughput, so the
telemetry tracks the distribution: rolling p50/p95/p99 over the last
``rolling`` served clouds (bounded memory on unbounded streams), plus the
window-scheduler vitals — queue depth at window close, window occupancy
(how full windows run against their ``W`` budget), and the fused-vs-
singleton split (how much traffic the bucket planner actually fuses).

Two consumption styles:

- :meth:`ServeTelemetry.tick` returns a one-line stats summary every
  ``every`` windows (the periodic log line of ``repro serve``);
- :meth:`ServeTelemetry.report` folds everything into a final
  :class:`ServeReport` once the stream ends.

The percentile primitives (the preallocated :class:`LatencyRing` and
:func:`latency_percentiles`) live in :mod:`repro.obs.metrics` and are
re-exported here so serving-layer callers keep one import path.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Iterable

from ..obs import PERCENTILES, LatencyRing, latency_percentiles

__all__ = [
    "PERCENTILES",
    "LatencyRing",
    "ServeReport",
    "ServeTelemetry",
    "latency_percentiles",
]


@dataclass(frozen=True)
class ServeReport:
    """Final accounting of one serving session.

    ``label`` names the stream the numbers belong to (the tenant, in
    multi-tenant serving; empty for a single-stream server).

    The partition-source split (``cold`` / ``patched`` / ``warm``)
    counts how each distinct cloud's partition was obtained — full cold
    build, delta protocol (certificate reuse or incremental patch), or
    exact cache hit.  All zero on servers predating the delta protocol.
    """

    clouds: int
    windows: int
    buckets: int
    fused_clouds: int
    singleton_clouds: int
    reused_clouds: int
    wall_seconds: float
    latency_p50: float
    latency_p95: float
    latency_p99: float
    mean_occupancy: float
    max_queue_depth: int
    timeout_windows: int
    label: str = ""
    cold_clouds: int = 0
    patched_clouds: int = 0
    warm_clouds: int = 0

    @property
    def clouds_per_second(self) -> float:
        return self.clouds / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def fused_ratio(self) -> float:
        """Fraction of distinct (non-reused) clouds served from a fused
        bucket rather than the per-cloud fallback."""
        distinct = self.fused_clouds + self.singleton_clouds
        return self.fused_clouds / distinct if distinct else 0.0

    def format(self) -> str:
        """Multi-line human report (``repro serve`` prints this)."""
        who = f"[{self.label}] " if self.label else ""
        lines = [
            f"{who}served {self.clouds} clouds in {self.windows} windows "
            f"({self.wall_seconds * 1e3:.0f} ms, "
            f"{self.clouds_per_second:.1f} clouds/s)",
            f"  latency p50/p95/p99 {self.latency_p50 * 1e3:.2f}/"
            f"{self.latency_p95 * 1e3:.2f}/{self.latency_p99 * 1e3:.2f} ms",
            f"  fused {self.fused_clouds} clouds in {self.buckets} buckets "
            f"({self.fused_ratio:.0%} of distinct traffic), "
            f"{self.singleton_clouds} singletons, "
            f"{self.reused_clouds} reused",
            f"  windows {self.mean_occupancy:.0%} full on average, "
            f"{self.timeout_windows} closed on timeout, "
            f"max queue depth {self.max_queue_depth}",
        ]
        if self.cold_clouds or self.patched_clouds or self.warm_clouds:
            lines.append(
                f"  partitions {self.cold_clouds} cold, "
                f"{self.patched_clouds} patched, {self.warm_clouds} warm"
            )
        return "\n".join(lines)

    @classmethod
    def merge(cls, reports: "Iterable[ServeReport]") -> "ServeReport":
        """Aggregate per-tenant / per-shard reports into one.

        Every field must appear in exactly one policy set below —
        adding a ``ServeReport`` field without deciding how it merges
        raises here instead of silently defaulting (the bug this
        replaces: layers hand-assembled reports field by field and new
        fields like the cold/patched/warm split dropped to zero).

        Policies: counts **sum**; ``wall_seconds`` and
        ``max_queue_depth`` take the **max** (sessions share one wall
        clock and the depth bound is a worst case); latency percentiles
        take the **max** (a conservative bound — true aggregate
        percentiles need the samples, which reports no longer hold);
        ``mean_occupancy`` re-weights by window count; labels join with
        ``+``.
        """
        names = {f.name for f in dataclasses.fields(cls)}
        covered = (
            _MERGE_SUM | _MERGE_MAX | {"mean_occupancy", "label"}
        )
        if covered != names:
            missing = sorted(names - covered) + sorted(covered - names)
            raise RuntimeError(
                f"ServeReport.merge has no policy for field(s) {missing}; "
                "add each to exactly one merge set"
            )
        reports = list(reports)
        if not reports:
            raise ValueError("cannot merge zero reports")
        fields: dict[str, object] = {}
        for name in _MERGE_SUM:
            fields[name] = sum(getattr(r, name) for r in reports)
        for name in _MERGE_MAX:
            fields[name] = max(getattr(r, name) for r in reports)
        windows = sum(r.windows for r in reports)
        fields["mean_occupancy"] = (
            sum(r.mean_occupancy * r.windows for r in reports) / windows
            if windows
            else 0.0
        )
        labels = [r.label for r in reports if r.label]
        fields["label"] = "+".join(dict.fromkeys(labels))
        return cls(**fields)

    def __add__(self, other: "ServeReport") -> "ServeReport":
        if not isinstance(other, ServeReport):
            return NotImplemented
        return ServeReport.merge((self, other))


#: Merge policies for :meth:`ServeReport.merge`, one set per strategy.
_MERGE_SUM = frozenset(
    {
        "clouds",
        "windows",
        "buckets",
        "fused_clouds",
        "singleton_clouds",
        "reused_clouds",
        "timeout_windows",
        "cold_clouds",
        "patched_clouds",
        "warm_clouds",
    }
)
_MERGE_MAX = frozenset(
    {
        "wall_seconds",
        "latency_p50",
        "latency_p95",
        "latency_p99",
        "max_queue_depth",
    }
)


class ServeTelemetry:
    """Rolling statistics collector for the windowed serving loop.

    Args:
        window_capacity: the scheduler's ``W`` (occupancy denominator).
        rolling: how many recent per-cloud latencies the percentile
            window retains — the memory bound on unbounded streams.
        every: emit a :meth:`tick` line every that many windows
            (``0`` disables periodic lines).
        label: stream name stamped on stats lines and the final report
            (the tenant name in multi-tenant serving).
    """

    def __init__(
        self,
        *,
        window_capacity: int = 16,
        rolling: int = 1024,
        every: int = 10,
        label: str = "",
    ):
        if window_capacity < 1:
            raise ValueError(f"window_capacity must be >= 1, got {window_capacity}")
        if rolling < 1:
            raise ValueError(f"rolling must be >= 1, got {rolling}")
        self.window_capacity = window_capacity
        self.every = every
        self.label = label
        self.latencies = LatencyRing(rolling)
        self.clouds = 0
        self.windows = 0
        self.buckets = 0
        self.fused_clouds = 0
        self.singleton_clouds = 0
        self.reused_clouds = 0
        self.occupancy_sum = 0
        self.max_queue_depth = 0
        self.timeout_windows = 0
        self.last_queue_depth = 0
        self.cold_clouds = 0
        self.patched_clouds = 0
        self.warm_clouds = 0

    # -- recording -----------------------------------------------------------

    def record_latency(self, seconds: float) -> None:
        """One cloud served; ``seconds`` is arrival-to-emit latency."""
        self.latencies.append(float(seconds))
        self.clouds += 1

    def record_window(
        self,
        *,
        size: int,
        buckets: int,
        fused: int,
        singletons: int,
        reused: int,
        queue_depth: int,
        timed_out: bool,
        cold: int = 0,
        patched: int = 0,
        warm: int = 0,
    ) -> None:
        """One window executed (counts, not timings — latency is per cloud).

        ``cold``/``patched``/``warm`` split the window's distinct clouds
        by partition source (zero when the serving layer predates the
        delta protocol or the engine runs without it).
        """
        self.windows += 1
        self.buckets += buckets
        self.fused_clouds += fused
        self.singleton_clouds += singletons
        self.reused_clouds += reused
        self.cold_clouds += cold
        self.patched_clouds += patched
        self.warm_clouds += warm
        self.occupancy_sum += size
        self.last_queue_depth = queue_depth
        self.max_queue_depth = max(self.max_queue_depth, queue_depth)
        if timed_out:
            self.timeout_windows += 1

    # -- reading -------------------------------------------------------------

    @property
    def mean_occupancy(self) -> float:
        if not self.windows:
            return 0.0
        return self.occupancy_sum / (self.windows * self.window_capacity)

    def percentiles(self) -> tuple[float, float, float]:
        """Rolling ``(p50, p95, p99)`` latency in seconds."""
        return latency_percentiles(self.latencies)

    def stats_line(self) -> str:
        """One-line snapshot: the periodic log line of ``repro serve``."""
        p50, p95, p99 = self.percentiles()
        distinct = self.fused_clouds + self.singleton_clouds
        fused_ratio = self.fused_clouds / distinct if distinct else 0.0
        tag = f"serve:{self.label}" if self.label else "serve"
        return (
            f"[{tag}] {self.clouds} clouds / {self.windows} windows | "
            f"p50/p95/p99 {p50 * 1e3:.2f}/{p95 * 1e3:.2f}/{p99 * 1e3:.2f} ms | "
            f"queue {self.last_queue_depth} | "
            f"occupancy {self.mean_occupancy:.0%} | "
            f"fused {fused_ratio:.0%} | reused {self.reused_clouds}"
            + (
                f" | cold/patched/warm {self.cold_clouds}/"
                f"{self.patched_clouds}/{self.warm_clouds}"
                if self.patched_clouds or self.warm_clouds
                else ""
            )
        )

    def tick(self) -> str | None:
        """:meth:`stats_line` every ``every`` windows, else ``None``."""
        if self.every and self.windows and self.windows % self.every == 0:
            return self.stats_line()
        return None

    def report(self, wall_seconds: float) -> ServeReport:
        """Freeze everything into the final :class:`ServeReport`."""
        p50, p95, p99 = self.percentiles()
        return ServeReport(
            clouds=self.clouds,
            windows=self.windows,
            buckets=self.buckets,
            fused_clouds=self.fused_clouds,
            singleton_clouds=self.singleton_clouds,
            reused_clouds=self.reused_clouds,
            wall_seconds=wall_seconds,
            latency_p50=p50,
            latency_p95=p95,
            latency_p99=p99,
            mean_occupancy=self.mean_occupancy,
            max_queue_depth=self.max_queue_depth,
            timeout_windows=self.timeout_windows,
            label=self.label,
            cold_clouds=self.cold_clouds,
            patched_clouds=self.patched_clouds,
            warm_clouds=self.warm_clouds,
        )
