"""Tests for the Fig. 12 area/power budget."""

import pytest

from repro.hw import FRACTALCLOUD, FRACTALCLOUD_BUDGET, total_area_mm2, total_power_w
from repro.hw import area


class TestBudget:
    def test_totals_match_reported_figures(self):
        assert total_area_mm2() == pytest.approx(area.CORE_AREA_MM2, rel=0.01)
        assert total_power_w() == pytest.approx(area.AVG_POWER_W, rel=0.01)

    def test_budget_consistent_with_table2(self):
        assert area.CORE_AREA_MM2 == FRACTALCLOUD.area_mm2
        assert area.SRAM_KB == FRACTALCLOUD.sram_kb
        assert area.FREQUENCY_HZ == FRACTALCLOUD.frequency_hz

    def test_fractal_engine_overhead_small(self):
        """Paper: the fractal engine adds ~1% area."""
        engine = next(m for m in FRACTALCLOUD_BUDGET if "Fractal engine" in m.name)
        assert engine.area_mm2 / total_area_mm2() < 0.02

    def test_all_modules_positive(self):
        for module in FRACTALCLOUD_BUDGET:
            assert module.area_mm2 > 0
            assert module.power_w > 0

    def test_smaller_than_every_baseline(self):
        from repro.hw import CRESCENT, MESORASI, POINTACC

        for cfg in (MESORASI, POINTACC, CRESCENT):
            assert FRACTALCLOUD.area_mm2 < cfg.area_mm2
