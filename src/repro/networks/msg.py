"""Multi-scale grouping (MSG) set abstraction.

PointNet++'s MSG variant groups each sampled centre at several radii and
concatenates the per-scale pooled features — more robust to non-uniform
density (the original paper's motivation, and exactly the regime the
FractalCloud workloads live in).  Included as the optional-extension
backbone: one extra neighbour search per scale, which BPPO parallelises
the same way (the block search-space rule is radius-agnostic as long as
radii stay within the parent extent).
"""

from __future__ import annotations

import numpy as np

from .backends import PointOpsBackend
from .layers import Module
from .modules import SAStage

__all__ = ["SAStageMSG"]


class SAStageMSG(Module):
    """Set abstraction with multi-scale grouping.

    Args:
        n_out: sampled centres.
        scales: list of ``(radius, k)`` pairs, one neighbour search each.
        in_channels: input feature channels.
        mlp_widths: per-scale shared-MLP widths (same widths every scale).
        rng: init RNG.

    Output channels = ``len(scales) * mlp_widths[-1]``.
    """

    def __init__(
        self,
        n_out: int,
        scales: list[tuple[float, int]],
        in_channels: int,
        mlp_widths: list[int],
        rng: np.random.Generator,
    ):
        if not scales:
            raise ValueError("need at least one (radius, k) scale")
        self.n_out = n_out
        self.scales = list(scales)
        # One single-scale SA stage per radius; sampling is shared, so the
        # per-scale stages only perform group -> gather -> MLP -> pool.
        self.stages = [
            SAStage(
                n_out=n_out, radius=r, k=k, in_channels=in_channels,
                mlp_widths=list(mlp_widths), rng=rng,
            )
            for r, k in scales
        ]
        self.out_channels = len(scales) * mlp_widths[-1]
        self._ctx: dict | None = None

    def forward(
        self,
        coords: np.ndarray,
        feats: np.ndarray | None,
        backend: PointOpsBackend,
        agg: str = "auto",
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Returns ``(center_coords, out_feats, center_indices)``."""
        n_out = min(self.n_out, len(coords))
        centers = backend.sample(coords, n_out)
        out = self.compute(coords, feats, backend, centers, agg=agg)
        self._ctx = {"n_scales": len(self.stages)}
        return coords[centers], out, centers

    def compute(
        self,
        coords: np.ndarray,
        feats: np.ndarray | None,
        backend: PointOpsBackend,
        centers: np.ndarray,
        agg: str = "auto",
    ) -> np.ndarray:
        """Per-scale group + MLP/aggregate over precomputed centres."""
        outputs = []
        for (radius, k), stage in zip(self.scales, self.stages):
            neighbors = backend.group(coords, centers, radius, k)
            outputs.append(stage.compute(coords, feats, neighbors, agg=agg))
        return np.concatenate(outputs, axis=1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray | None:
        if self._ctx is None:
            raise RuntimeError("backward called before forward")
        width = grad_out.shape[1] // self._ctx["n_scales"]
        total = None
        for i, stage in enumerate(self.stages):
            grad = stage.backward(grad_out[:, i * width:(i + 1) * width])
            if grad is not None:
                total = grad if total is None else total + grad
        return total


class _FixedSampleBackend(PointOpsBackend):
    """Wraps a backend but returns a predetermined sample set.

    Lets the MSG scales share one FPS result, as the real network does.
    """

    name = "fixed-sample"

    def __init__(self, inner: PointOpsBackend, centers: np.ndarray):
        self._inner = inner
        self._centers = np.asarray(centers, dtype=np.int64)

    def sample(self, coords: np.ndarray, num_samples: int) -> np.ndarray:
        if num_samples > len(self._centers):
            # Silently returning the short slice would hand the caller
            # fewer centres than it asked for and skew every per-scale
            # output shape downstream.
            raise ValueError(
                f"fixed sample set holds {len(self._centers)} centres, "
                f"cannot satisfy num_samples={num_samples}"
            )
        return self._centers[:num_samples]

    def group(self, coords, center_indices, radius, k):
        return self._inner.group(coords, center_indices, radius, k)

    def interpolate_indices(self, coords, center_indices, candidate_indices, k=3):
        return self._inner.interpolate_indices(
            coords, center_indices, candidate_indices, k
        )
