"""FractalCloud reproduction: fractal-inspired large-scale point cloud processing.

A from-scratch Python implementation of *FractalCloud* (HPCA 2026): the
Fractal shape-aware partitioner, Block-Parallel Point Operations, a
cycle-level model of the FractalCloud accelerator and its baselines
(Mesorasi / PointAcc / Crescent / GPU), the evaluated PNN workloads, and
synthetic stand-ins for the paper's datasets.

Quick start::

    import numpy as np
    from repro import fractal_partition, FractalConfig
    from repro.core import block_fps, block_ball_query

    coords = np.random.default_rng(0).normal(size=(4096, 3))
    tree = fractal_partition(coords, FractalConfig(threshold=64))
    structure = tree.block_structure()
    sampled, _ = block_fps(structure, coords, 1024)
    neighbors, _ = block_ball_query(structure, coords, sampled, 0.3, 16)

Subpackages:

- :mod:`repro.core` — the paper's contribution (Fractal + BPPO).
- :mod:`repro.geometry` — point-cloud containers and exact operations.
- :mod:`repro.partition` — uniform / KD-tree / octree baselines.
- :mod:`repro.datasets` — synthetic ModelNet40/ShapeNet/S3DIS/LiDAR data.
- :mod:`repro.networks` — trainable numpy PNNs + Table I workloads.
- :mod:`repro.hw` — accelerator/GPU performance & energy models.
- :mod:`repro.runtime` — the workload→hardware compiler.
- :mod:`repro.serve` — windowed micro-batching serving layer.
- :mod:`repro.analysis` — experiment tables and sweeps.
"""

from .core import (
    BlockLayout,
    BlockStructure,
    FractalConfig,
    FractalTree,
    fractal_partition,
)
from .geometry import PointCloud

__version__ = "1.0.0"

__all__ = [
    "BlockLayout",
    "BlockStructure",
    "FractalConfig",
    "FractalTree",
    "PointCloud",
    "__version__",
    "fractal_partition",
]
