"""Network-on-Chip / DMA model (paper §V-A memory interface).

The NoC distributes block data from the global buffer to the per-block
compute units; the DMA moves stage inputs/outputs between DRAM and the
buffer.  Both are bandwidth-limited pipes whose latency overlaps with
compute, so the accelerator model needs only their transfer times and
per-transfer setup overheads — which matter at small block sizes, where
a naive design would pay one DMA descriptor per tiny block.  The DFT
layout keeps blocks contiguous, so one descriptor covers a whole subtree.
"""

from __future__ import annotations

from dataclasses import dataclass

from .cost import UnitCost

__all__ = ["NoCModel"]


@dataclass(frozen=True)
class NoCModel:
    """On-chip interconnect + DMA engine.

    Attributes:
        bytes_per_cycle: NoC payload width (global buffer → units).
        dma_setup_cycles: fixed cost to program one DMA descriptor.
        max_outstanding: concurrently active DMA descriptors.
    """

    bytes_per_cycle: int = 64
    dma_setup_cycles: int = 32
    max_outstanding: int = 8

    def distribute(self, total_bytes: float, num_blocks: int, *,
                   contiguous: bool = True) -> UnitCost:
        """Move block data to compute units.

        Args:
            total_bytes: payload across all blocks.
            num_blocks: number of block transfers.
            contiguous: DFT layout lets one descriptor cover consecutive
                blocks; a scattered layout needs one per block.
        """
        transfer = total_bytes / self.bytes_per_cycle
        descriptors = 1 if contiguous else max(num_blocks, 1)
        setup = descriptors * self.dma_setup_cycles / self.max_outstanding
        return UnitCost(compute_cycles=transfer + setup)

    def transfer_time_cycles(self, nbytes: float) -> float:
        """Pure payload time for one stream."""
        return nbytes / self.bytes_per_cycle
