"""Multi-tenant serving: N client sessions sharing one fused engine.

PR 4's :class:`~repro.serve.window.WindowedServer` serves exactly one
stream; the north-star traffic is many concurrent clients sharing one
machine.  The naive fix — one server (and one engine, and one pool) per
client — forfeits the two things sharing is for: **cross-tenant fusion**
(compatible clouds from different clients packed into one ragged kernel
invocation, so nobody's half-empty window wastes the amortisation) and
**fairness** (a bursty client must not be able to queue a latency-
sensitive one into the ground just by arriving faster).

The pieces:

- :class:`TenantSpec` / :class:`TenantSession` — each tenant holds its
  own pipeline config, its own dedup window, its own telemetry, and
  optionally its own :class:`~repro.serve.controller.AdaptiveWindow`;
  only the :class:`~repro.runtime.executor.BatchExecutor` (and its
  persistent worker pool) is shared.
- :class:`DeficitRoundRobin` — cost-aware admission (cost = points, the
  unit the kernels actually bill in).  Classic DRR with one serving
  guarantee bolted on: a tenant with queued work is **never passed over
  in two consecutive rounds** — whatever the quantum, the window budget,
  or the sizes of its clouds.
- :class:`MultiTenantServer` — the scheduler: collect arrivals across
  tenants into one shared window, admit fairly, group admitted clouds by
  pipeline, and run each group through the engine's fused machinery
  (``execute_window``) so clouds from different tenants land in the same
  ragged invocation whenever the bin-packer finds them compatible.

Ordering and correctness contract: every tenant sees its own results in
its own submission order, and every result is index-level bit-identical
to that tenant running its stream alone through the serial reference
path — window composition, fairness decisions, and cross-tenant bucket
mates affect latency and throughput, never a bit
(``tests/test_tenancy.py``).
"""

from __future__ import annotations

import dataclasses
import queue
import threading
from collections import OrderedDict, deque
from collections.abc import Iterable, Iterator, Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..runtime.cache import result_key
from ..runtime.executor import BatchExecutor, CloudResult, PipelineSpec, _as_cloud
from .controller import AdaptiveWindow, ControllerConfig
from .planner import WindowPlan
from .telemetry import ServeReport, ServeTelemetry
from .window import WindowConfig

__all__ = [
    "DeficitRoundRobin",
    "MultiTenantServer",
    "TenantResult",
    "TenantSpec",
]

_DONE = object()


@dataclass(frozen=True)
class TenantSpec:
    """Static per-tenant configuration.

    Attributes:
        name: the tenant's id (the tag on the wire and in reports).
        pipeline: the BPPO pipeline this tenant's clouds run through.
            Tenants sharing an identical pipeline fuse with each other;
            different pipelines execute separately (still in the same
            window, on the same engine).
        weight: DRR weight — a tenant with weight 2 earns twice the
            admission quantum per round.
        reuse_window: per-tenant dedup depth (distinct recent clouds a
            repeat can replay from); ``None`` uses the engine's.
    """

    name: str
    pipeline: PipelineSpec = field(default_factory=PipelineSpec)
    weight: float = 1.0
    reuse_window: int | None = None

    def __post_init__(self):
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.weight <= 0:
            raise ValueError(f"weight must be > 0, got {self.weight}")
        if self.reuse_window is not None and self.reuse_window < 1:
            raise ValueError(
                f"reuse_window must be >= 1 or None, got {self.reuse_window}"
            )


@dataclass
class _Request:
    """One queued cloud of one tenant."""

    seq: int
    arrived: float
    coords: np.ndarray
    features: np.ndarray | None
    key: bytes | None

    @property
    def cost(self) -> int:
        return len(self.coords)


@dataclass
class TenantResult:
    """One served cloud: the engine's result plus its tenant envelope."""

    tenant: str
    seq: int
    latency: float
    result: CloudResult


class DeficitRoundRobin:
    """Cost-aware fair admission across tenant queues.

    Deficit round robin (Shreedhar & Varghese, 1996): each round every
    backlogged tenant earns ``quantum × weight`` credit and admits
    head-of-line requests while its credit covers their cost, so over
    time each tenant's admitted *work* (points, not requests) converges
    to its weight share regardless of how its traffic is sliced into
    clouds.

    One guarantee is added on top of the classic algorithm, because a
    serving scheduler must bound waiting in *rounds*, not just in work:
    a tenant that was backlogged and admitted nothing in round ``r`` is
    served **first** in round ``r+1`` (one request, minimum), even if
    its credit does not cover the cost and even if the window budget is
    already spoken for — the admission capacity is raised when needed.
    So no ready tenant is ever skipped twice in a row, which is the
    starvation bound the test suite holds as a hypothesis property.
    """

    def __init__(
        self,
        quantum: float = 8192.0,
        *,
        weights: Mapping[str, float] | None = None,
    ):
        if quantum <= 0:
            raise ValueError(f"quantum must be > 0, got {quantum}")
        self.quantum = float(quantum)
        self._weights: dict[str, float] = dict(weights or {})
        self._order: list[str] = []
        self._deficit: dict[str, float] = {}
        self._cursor = 0
        self._starved: set[str] = set()

    def register(self, tenant: str, weight: float = 1.0) -> None:
        """Add a tenant to the rotation (idempotent, stable order)."""
        if tenant not in self._deficit:
            self._order.append(tenant)
            self._deficit[tenant] = 0.0
            self._weights.setdefault(tenant, weight)

    @property
    def deficits(self) -> dict[str, float]:
        """Current per-tenant credit (read-only snapshot)."""
        return dict(self._deficit)

    def _rotation(self, ready: Sequence[str]) -> list[str]:
        """Ready tenants in rotation order, starting at the cursor."""
        ranked = {name: i for i, name in enumerate(self._order)}
        start = self._cursor % max(len(self._order), 1)
        return sorted(
            ready, key=lambda t: ((ranked[t] - start) % len(self._order), ranked[t])
        )

    def admit(
        self, queues: Mapping[str, Sequence[float]], capacity: int
    ) -> dict[str, int]:
        """One admission round.

        Args:
            queues: per-tenant costs of queued requests, head of line
                first.  Unknown tenants are registered in iteration
                order.
            capacity: the window budget in requests.  Internally raised
                to the number of previously-starved backlogged tenants
                so the no-double-skip guarantee survives tiny windows.

        Returns:
            ``{tenant: count}`` — how many head-of-line requests each
            tenant sends into this window (only non-zero entries).
        """
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        for tenant in queues:
            self.register(tenant)
        ready = [t for t in self._order if len(queues.get(t, ())) > 0]
        if not ready:
            self._starved = set()
            return {}
        admitted = {t: 0 for t in ready}
        rotation = self._rotation(ready)
        remaining = max(capacity, len(self._starved & set(ready)))

        # Starvation guard: last round's passed-over tenants go first.
        for tenant in rotation:
            if tenant in self._starved and remaining > 0:
                admitted[tenant] = 1
                self._deficit[tenant] = 0.0
                remaining -= 1

        # Classic DRR pass over everyone still backlogged.
        for tenant in rotation:
            if remaining <= 0:
                break
            costs = queues[tenant]
            taken = admitted[tenant]
            if taken >= len(costs):
                self._deficit[tenant] = 0.0
                continue
            self._deficit[tenant] += self.quantum * self._weights.get(tenant, 1.0)
            while (
                taken < len(costs)
                and remaining > 0
                and self._deficit[tenant] >= costs[taken]
            ):
                self._deficit[tenant] -= costs[taken]
                taken += 1
                remaining -= 1
            admitted[tenant] = taken
            if taken >= len(costs):
                # Queue drained: credit does not bank across idle time.
                self._deficit[tenant] = 0.0

        self._starved = {t for t in ready if admitted[t] == 0}
        if self._order:
            self._cursor = (self._cursor + 1) % len(self._order)
        return {t: n for t, n in admitted.items() if n > 0}


class TenantSession:
    """Live per-tenant serving state (owned by the server).

    Everything that must *not* leak across tenants lives here: the FIFO
    request queue, the submission/emission counters, the dedup window of
    canonical results, the telemetry, and the adaptive controller.
    """

    def __init__(
        self,
        spec: TenantSpec,
        *,
        reuse_window: int,
        telemetry: ServeTelemetry,
        controller: AdaptiveWindow | None,
    ):
        self.spec = spec
        self.queue: deque[_Request] = deque()
        self.submitted = 0
        self.emitted = 0
        self.done: OrderedDict[bytes, CloudResult] = OrderedDict()
        self.reuse_window = (
            spec.reuse_window if spec.reuse_window is not None else reuse_window
        )
        self.telemetry = telemetry
        self.controller = controller

    @property
    def name(self) -> str:
        return self.spec.name

    def remember(self, key: bytes, result: CloudResult) -> None:
        """Admit one canonical result into the tenant's dedup window."""
        self.done[key] = result
        while len(self.done) > self.reuse_window:
            self.done.popitem(last=False)


class MultiTenantServer:
    """Serve N tenant streams through one shared fused engine.

    Usage::

        engine = BatchExecutor("fractal", block_size=64, max_workers=4)
        server = MultiTenantServer(
            engine,
            [TenantSpec("lidar", PipelineSpec(radius=0.3)),
             TenantSpec("assets", weight=2.0)],
            adaptive=True,
        )
        for served in server.serve(tagged_stream()):   # (tenant, cloud)
            consume(served.tenant, served.result)
        server.close()

    The synchronous core (:meth:`submit` + :meth:`drain`) is exposed so
    schedulers can be driven deterministically — the fairness suite
    feeds a synthetic clock through ``arrived=`` / ``now=`` and never
    touches a thread.

    Args:
        engine: the shared :class:`BatchExecutor`; its persistent pool,
            fusion caps, and ``reuse_results`` switch apply to every
            tenant.
        tenants: :class:`TenantSpec`\\ s (or bare names) declaring the
            sessions.
        window: static shared window limits (default
            :class:`WindowConfig`); ``W`` is the admission budget of one
            round, ``T`` the assembly timeout of :meth:`serve`.
        adaptive: give each tenant an :class:`AdaptiveWindow`; the
            shared window is then the aggregate of the per-tenant
            policies (sum of ``W``s, min of ``T``s — the most latency-
            sensitive tenant sets the pace).
        controller: bounds/gains for the per-tenant controllers (implies
            ``adaptive=True`` when given); defaults to bounds derived
            from ``window``.
        quantum_points: DRR quantum in points per round per unit weight.
        share_results: opt-in cross-tenant dedup.  Hot assets are hot
            for *every* tenant; with this on, a cloud whose exact
            content was served to any tenant recently replays from one
            shared content-addressed window instead of recomputing —
            bit-identical by construction, marked ``reused``.  Off by
            default: strict session isolation (tenants never observe
            each other's results, not even identical ones).
        telemetry_every: per-tenant stats-line period (0 = final report
            only).
        clock: timestamp source (tests inject a synthetic one).
    """

    def __init__(
        self,
        engine: BatchExecutor,
        tenants: Iterable[TenantSpec | str],
        *,
        window: WindowConfig | None = None,
        adaptive: bool = False,
        controller: ControllerConfig | None = None,
        quantum_points: float = 8192.0,
        share_results: bool = False,
        telemetry_every: int = 0,
        clock=obs.now,
    ):
        self.engine = engine
        self.window = window or WindowConfig()
        self._clock = clock
        specs = [
            spec if isinstance(spec, TenantSpec) else TenantSpec(str(spec))
            for spec in tenants
        ]
        if not specs:
            raise ValueError("need at least one tenant")
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names in {names}")
        if controller is not None:
            adaptive = True
        if adaptive and controller is None:
            controller = ControllerConfig(
                max_clouds=self.window.max_clouds,
                max_wait=self.window.max_wait,
                min_wait=min(0.002, self.window.max_wait),
            )
        self.adaptive = adaptive
        self.share_results = share_results
        # Occupancy denominator: the budget one tenant *could* win in a
        # round — the whole shared window (adaptive: the aggregate of
        # the per-tenant bounds).
        capacity = (
            controller.max_clouds * len(specs)
            if adaptive
            else self.window.max_clouds
        )
        #: Cross-tenant dedup window (share_results mode only): content
        #: key -> canonical CloudResult, bounded like the session ones.
        self._shared_done: OrderedDict[bytes, CloudResult] = OrderedDict()
        self.scheduler = DeficitRoundRobin(
            quantum_points, weights={spec.name: spec.weight for spec in specs}
        )
        self._sessions: dict[str, TenantSession] = {}
        for spec in specs:
            self.scheduler.register(spec.name, spec.weight)
            self._sessions[spec.name] = TenantSession(
                spec,
                reuse_window=engine.reuse_window,
                telemetry=ServeTelemetry(
                    window_capacity=capacity,
                    every=telemetry_every,
                    label=spec.name,
                ),
                controller=AdaptiveWindow(controller) if adaptive else None,
            )

    # -- introspection -------------------------------------------------------

    @property
    def tenants(self) -> tuple[str, ...]:
        """Tenant names in registration order."""
        return tuple(self._sessions)

    def session(self, tenant: str) -> TenantSession:
        """The live session of one tenant (telemetry, queue, controller)."""
        return self._sessions[tenant]

    @property
    def backlog(self) -> int:
        """Total queued-but-unserved requests across all tenants."""
        return sum(len(s.queue) for s in self._sessions.values())

    def limits(self) -> tuple[int, float]:
        """The shared window's current ``(W, T)``.

        Static mode returns the configured window.  Adaptive mode
        aggregates the per-tenant controllers: the budget is the sum of
        what each tenant's policy wants (everyone's traffic shares the
        window), the timeout is the minimum (the most latency-sensitive
        tenant must not wait for anyone else's batch to fill).
        """
        if not self.adaptive:
            return (self.window.max_clouds, self.window.max_wait)
        sessions = self._sessions.values()
        clouds = sum(s.controller.max_clouds for s in sessions)
        wait = min(s.controller.max_wait for s in sessions)
        return (max(clouds, 1), wait)

    def reports(self, wall_seconds: float) -> dict[str, ServeReport]:
        """Per-tenant final reports over a shared wall-clock interval."""
        return {
            name: session.telemetry.report(wall_seconds)
            for name, session in self._sessions.items()
        }

    # -- synchronous core ----------------------------------------------------

    def submit(self, tenant: str, cloud: object, *, arrived: float | None = None) -> int:
        """Queue one cloud for ``tenant``; returns its per-tenant seq.

        ``arrived`` defaults to the server clock; tests pass explicit
        timestamps to make latency accounting deterministic.
        """
        try:
            session = self._sessions[tenant]
        except KeyError:
            raise ValueError(
                f"unknown tenant {tenant!r}; sessions exist for {list(self._sessions)}"
            ) from None
        coords, features = _as_cloud(cloud)
        when = self._clock() if arrived is None else float(arrived)
        key = result_key(coords, features) if self.engine.reuse_results else None
        request = _Request(session.submitted, when, coords, features, key)
        session.submitted += 1
        session.queue.append(request)
        if session.controller is not None:
            session.controller.observe_arrival(when)
        return request.seq

    def drain(
        self, *, now: float | None = None, timed_out: bool = False
    ) -> list[TenantResult]:
        """Run one admission + execution round over the queued backlog.

        Admission is one :class:`DeficitRoundRobin` round under the
        current window budget; admitted clouds are grouped by pipeline
        and each group runs through the engine's fused machinery, so
        clouds of different tenants share ragged kernel invocations.
        Emissions are per-tenant submission-ordered (admission always
        takes a FIFO prefix of each queue).  Returns an empty list when
        nothing is queued.

        ``now`` stamps the emissions (defaults to the server clock read
        *after* execution); ``timed_out`` is bookkeeping from the
        streaming loop.
        """
        queues = {
            name: [request.cost for request in session.queue]
            for name, session in self._sessions.items()
            if session.queue
        }
        if not queues:
            return []
        budget, _ = self.limits()
        admitted = self.scheduler.admit(queues, budget)

        batch: list[tuple[TenantSession, _Request]] = []
        for name in self._sessions:
            session = self._sessions[name]
            for _ in range(admitted.get(name, 0)):
                batch.append((session, session.queue.popleft()))

        groups: dict[PipelineSpec, list[tuple[TenantSession, _Request]]] = {}
        for session, request in batch:
            groups.setdefault(session.spec.pipeline, []).append((session, request))

        emissions: list[TenantResult] = []
        plans: dict[str, WindowPlan] = {name: WindowPlan() for name in admitted}
        reused: dict[str, int] = {name: 0 for name in admitted}
        sources: dict[str, list[str]] = {name: [] for name in admitted}
        # Timed on the server clock so a synthetic clock keeps the whole
        # controller observation sequence deterministic.
        exec_start = self._clock()
        with (
            obs.span("serve.drain", clouds=len(batch), tenants=len(admitted))
            if obs.enabled()
            else obs.NULL_SPAN
        ):
            for pipeline, members in groups.items():
                emissions.extend(
                    self._execute_group(pipeline, members, plans, reused, sources)
                )
        exec_seconds = self._clock() - exec_start
        obs.observe("repro_serve_window_seconds", exec_seconds)
        obs.inc("repro_serve_clouds", len(batch))
        obs.inc("repro_serve_windows")
        computed = len(batch) - sum(reused.values())
        emitted_at = self._clock() if now is None else float(now)

        # Emission order: per-tenant seq order (guaranteed — each
        # tenant's members are a FIFO prefix), tenants in registration
        # order, so the full interleaving is deterministic.
        rank = {name: i for i, name in enumerate(self._sessions)}
        emissions.sort(key=lambda tr: (rank[tr.tenant], tr.seq))

        for served in emissions:
            session = self._sessions[served.tenant]
            served.latency = emitted_at - served.latency  # stored arrival
            assert served.seq == session.emitted, (
                f"tenant {served.tenant} would emit seq {served.seq} "
                f"before {session.emitted}"
            )
            session.emitted += 1
            session.telemetry.record_latency(served.latency)
            if session.controller is not None:
                session.controller.observe_latency(served.latency)
        for name, count in admitted.items():
            session = self._sessions[name]
            plan = plans[name]
            split = sources[name]
            session.telemetry.record_window(
                size=count,
                buckets=plan.buckets,
                fused=plan.fused_clouds,
                singletons=plan.singleton_clouds,
                reused=reused[name],
                queue_depth=len(session.queue),
                timed_out=timed_out,
                cold=split.count("cold"),
                patched=split.count("patched") + split.count("reused"),
                warm=split.count("warm"),
            )
            if session.controller is not None:
                if computed > 0:
                    session.controller.observe_service(exec_seconds, computed)
                session.controller.update()
        return emissions

    def _execute_group(
        self,
        pipeline: PipelineSpec,
        members: list[tuple[TenantSession, _Request]],
        plans: dict[str, WindowPlan],
        reused: dict[str, int],
        sources: dict[str, list[str]],
    ) -> list[TenantResult]:
        """Fused execution of one pipeline group (possibly many tenants).

        Dedup scope follows the server mode.  Default (strict): a repeat
        replays only against its own tenant's window or an earlier
        identical cloud of the same tenant in this group — tenants never
        observe each other's results, even bit-identical ones (isolation
        beats the replay win).  With ``share_results``: one shared
        content-addressed window spans tenants, so anyone's recent
        computation serves everyone's identical content.  The returned
        ``TenantResult.latency`` field temporarily carries the arrival
        timestamp; :meth:`drain` rewrites it once the shared emission
        time is known.
        """
        uniques: list[tuple[int, np.ndarray, np.ndarray | None]] = []
        owners: list[tuple[TenantSession, _Request]] = []
        canonical: dict[object, int] = {}
        replays: list[tuple[TenantSession, _Request, CloudResult]] = []
        dup_of: list[tuple[TenantSession, _Request, int]] = []
        for session, request in members:
            key = request.key
            done = self._shared_done if self.share_results else session.done
            scoped = (
                None
                if key is None
                else (key if self.share_results else (session.name, key))
            )
            if key is not None and key in done:
                done.move_to_end(key)
                replays.append((session, request, done[key]))
            elif scoped is not None and scoped in canonical:
                dup_of.append((session, request, canonical[scoped]))
            else:
                index = len(uniques)
                if scoped is not None:
                    canonical[scoped] = index
                uniques.append((index, request.coords, request.features))
                owners.append((session, request))

        results, plan = self.engine.execute_window(uniques, pipeline)

        # Partition-source split per owning tenant (cold / patched /
        # reused / warm), so per-tenant reports keep the delta-protocol
        # accounting the single-stream server already had.
        for index, (session, _) in enumerate(owners):
            sources[session.name].append(results[index].partition_source)

        # Attribute the fused/singleton split back to tenants.  A fused
        # bucket may span several tenants, so bucket counts cannot be
        # split exactly; each tenant with fused traffic in this group is
        # charged the group's bucket count (the invocations it rode in).
        singleton = set(plan.singleton_indices)
        for index, (session, _) in enumerate(owners):
            part = (
                WindowPlan(singleton_clouds=1)
                if index in singleton
                else WindowPlan(fused_clouds=1)
            )
            plans[session.name] = plans[session.name] + part
        for name in {session.name for session, _ in members}:
            if plans[name].fused_clouds:
                plans[name] = plans[name] + WindowPlan(buckets=plan.buckets)

        served: list[TenantResult] = []
        for index, (session, request) in enumerate(owners):
            result = results[index]
            result = dataclasses.replace(result, index=request.seq)
            if request.key is not None:
                if self.share_results:
                    self._shared_done[request.key] = result
                    while len(self._shared_done) > self.engine.reuse_window:
                        self._shared_done.popitem(last=False)
                else:
                    session.remember(request.key, result)
            served.append(
                TenantResult(session.name, request.seq, request.arrived, result)
            )
        for session, request, original in replays:
            result = dataclasses.replace(
                original, index=request.seq, cache_hit=True,
                seconds=0.0, reused=True,
            )
            reused[session.name] += 1
            served.append(
                TenantResult(session.name, request.seq, request.arrived, result)
            )
        for session, request, original_index in dup_of:
            result = dataclasses.replace(
                results[original_index], index=request.seq, cache_hit=True,
                seconds=0.0, reused=True,
            )
            reused[session.name] += 1
            served.append(
                TenantResult(session.name, request.seq, request.arrived, result)
            )
        return served

    # -- streaming facade ----------------------------------------------------

    def serve(
        self,
        requests: Iterable[tuple[str, object]],
        *,
        on_stats=None,
    ) -> Iterator[TenantResult]:
        """Serve an unbounded ``(tenant, cloud)`` stream.

        The shared window opens at the first arrival and closes after
        the aggregate ``W`` clouds are backlogged or ``T`` elapses
        (:meth:`limits` — adaptive when the server is); each close runs
        one :meth:`drain` round, so fairness applies whenever a burst
        outruns the budget and the backlog carries over.  Results yield
        in per-tenant submission order; the source may be unbounded
        (``engine.in_flight`` bounds the pull-ahead) and closing the
        generator stops the puller thread.
        """
        inbox: queue.Queue = queue.Queue(maxsize=max(1, self.engine.in_flight))
        stop = threading.Event()

        def put(item) -> None:
            while not stop.is_set():
                try:
                    inbox.put(item, timeout=0.05)
                    return
                except queue.Full:
                    continue

        def pull() -> None:
            try:
                for tagged in requests:
                    put((tagged, self._clock()))
                    if stop.is_set():
                        return
            except BaseException as exc:  # re-raised on the consumer side
                put((_DONE, exc))
            else:
                put((_DONE, None))

        puller = threading.Thread(
            target=pull, name="repro-serve-tenants-pull", daemon=True
        )
        puller.start()
        source_error: BaseException | None = None

        def ingest(item) -> None:
            (tenant, cloud), when = item
            self.submit(tenant, cloud, arrived=when)

        try:
            exhausted = False
            while not exhausted or self.backlog:
                if not self.backlog:
                    item = inbox.get()
                    if item[0] is _DONE:
                        source_error = item[1]
                        break
                    ingest(item)
                budget, wait = self.limits()
                deadline = obs.now() + wait
                timed_out = False
                while not exhausted and self.backlog < budget:
                    remaining = deadline - obs.now()
                    if remaining <= 0:
                        timed_out = True
                        break
                    try:
                        item = inbox.get(timeout=remaining)
                    except queue.Empty:
                        timed_out = True
                        break
                    if item[0] is _DONE:
                        source_error = item[1]
                        exhausted = True
                        break
                    ingest(item)
                yield from self.drain(timed_out=timed_out)
                if on_stats is not None:
                    for session in self._sessions.values():
                        line = session.telemetry.tick()
                        if line is not None:
                            on_stats(line)
            if source_error is not None:
                raise source_error
        finally:
            stop.set()
            # Same bound as WindowedServer.serve: put() polls stop every
            # 50 ms; a source blocked mid-iteration is abandoned as a
            # daemon rather than hanging shutdown.
            puller.join(timeout=1.0)

    def close(self) -> None:
        """Join the shared engine's persistent worker pool."""
        self.engine.close()

    def __enter__(self) -> "MultiTenantServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
