"""Density-uniform KD-tree partitioning (Crescent's strategy, Fig. 3(c)).

Recursively splits at the coordinate *median*, yielding strictly balanced
blocks (sizes differ by at most one at every level) and hence the best
possible workload balance — at the price of one exclusive sort per tree
node.  Those sorts are sequential level-to-level and non-decomposable
(paper §III-C "Exclusive Sorter"), which the cost counters expose:
``2^ceil(log2(n/BS)) - 1`` sorts versus Fractal's ``ceil(log2(n/BS))``
traversals (Fig. 5).

Being a binary tree, the KD-tree supports the same parent search-space
rule as Fractal, so its *accuracy* is comparable to Fractal's — the gap
the paper exploits is purely in preprocessing cost and parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..core.blocks import Block, BlockStructure, PartitionCost
from ..core.delta import KDTreeCertificate, attach_certificate
from .base import Partitioner

__all__ = ["KDTreePartitioner", "KDNode"]


@dataclass
class KDNode:
    """One KD-tree node (leaf blocks keep their index sets)."""

    indices: np.ndarray
    depth: int
    left: Optional["KDNode"] = None
    right: Optional["KDNode"] = None
    parent: Optional["KDNode"] = field(default=None, repr=False)

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class KDTreePartitioner(Partitioner):
    """Median KD-tree with a leaf-size bound.

    Args:
        max_leaf_size: maximum points per leaf block (Crescent's BS).
        parent_search: expose the parent node as the leaf's search space
            (True matches how block ops are run on binary trees; False is
            the leaf-only ablation).
    """

    name = "kdtree"
    supports_fused_build = True

    def __init__(self, max_leaf_size: int = 256, parent_search: bool = True):
        if max_leaf_size < 1:
            raise ValueError(f"max_leaf_size must be >= 1, got {max_leaf_size}")
        self.max_leaf_size = max_leaf_size
        self.parent_search = parent_search

    def partition(self, coords: np.ndarray, on_leaf=None) -> BlockStructure:
        n = len(coords)
        if n == 0:
            raise ValueError("cannot partition an empty point cloud")

        cost = PartitionCost()
        root = KDNode(indices=np.arange(n, dtype=np.int64), depth=0)
        # Level-synchronous to count sequential levels the way the
        # hardware experiences them: every level waits for its sorts.
        frontier = [root] if n > self.max_leaf_size else []
        if not frontier and on_leaf is not None:
            on_leaf(np.sort(root.indices))
        levels = 0
        while frontier:
            levels += 1
            next_frontier: list[KDNode] = []
            for node in frontier:
                m = node.num_points if hasattr(node, "num_points") else len(node.indices)
                dim = node.depth % 3
                # The exclusive sort: full median sort of the node.
                cost.sorts.append(int(m))
                order = np.argsort(coords[node.indices, dim], kind="stable")
                half = m // 2
                left_idx = node.indices[order[:half]]
                right_idx = node.indices[order[half:]]
                left = KDNode(left_idx, node.depth + 1, parent=node)
                right = KDNode(right_idx, node.depth + 1, parent=node)
                node.left, node.right = left, right
                for child in (left, right):
                    if len(child.indices) > self.max_leaf_size:
                        next_frontier.append(child)
                    elif on_leaf is not None:
                        # Finalized leaf: fused build-and-sample starts
                        # FPS here, in final block (sorted) order.
                        on_leaf(np.sort(child.indices))
            frontier = next_frontier
        cost.levels = levels

        leaves = self._collect_leaves(root)
        blocks = [Block(np.sort(leaf.indices), depth=leaf.depth) for leaf in leaves]
        spaces = []
        for leaf in leaves:
            if self.parent_search and leaf.parent is not None and leaf.depth > 1:
                spaces.append(np.sort(leaf.parent.indices))
            else:
                spaces.append(np.sort(leaf.indices))
        structure = BlockStructure(
            num_points=n,
            blocks=blocks,
            search_spaces=spaces,
            cost=cost,
            strategy=self.name,
        )
        attach_certificate(structure, KDTreeCertificate.from_tree(root, leaves))
        return structure

    @staticmethod
    def _collect_leaves(root: KDNode) -> list[KDNode]:
        leaves: list[KDNode] = []
        stack = [root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                leaves.append(node)
            else:
                stack.append(node.right)
                stack.append(node.left)
        return leaves
