"""Fig. 18 — incremental ablation of RSPU and the four BPPO operations.

Walks the optimisation ladder on PointNeXt segmentation at 289 K points:
Baseline → +delayed-aggregation (Meso) → +RSPU (reuse & skip) → +BWS
(block-wise sampling) → +BWG (grouping) → +BWI (interpolation) → +BWGa
(gathering), reporting cumulative speedup and energy saving over the
baseline.

Expected shape (paper): Meso alone is marginal (1.004x); RSPU gives
~1.4x; the block-wise decompositions deliver the bulk (2.3x, 2.2x, 20x,
1.5x incremental), compounding to >200x total speedup and energy saving.
"""

from repro.analysis import format_table
from repro.hw import AcceleratorSim, ablation_ladder
from repro.networks import get_workload

from _common import emit

N_POINTS = 289_000


def run_fig18():
    spec = get_workload("PNXt(s)")
    results = [AcceleratorSim(cfg).run(spec, N_POINTS) for cfg in ablation_ladder()]
    base = results[0]
    rows = []
    prev = base
    for cfg, r in zip(ablation_ladder(), results):
        rows.append([
            cfg.name,
            f"{r.latency_s * 1e3:.2f}",
            f"{prev.latency_s / r.latency_s:.2f}x",
            f"{base.latency_s / r.latency_s:.1f}x",
            f"{base.energy_j / r.energy_j:.1f}x",
        ])
        prev = r
    table = format_table(
        ["configuration", "latency ms", "incremental", "cumulative speedup",
         "cumulative energy saving"],
        rows,
        title=f"Fig. 18 — BPPO/RSPU incremental ablation @ {N_POINTS} pts "
              "(paper: 209x speedup, 192x energy over baseline)",
    )
    return table, results


def test_fig18_bppo_ablation(benchmark):
    table, results = benchmark.pedantic(run_fig18, rounds=1, iterations=1)
    emit("fig18_bppo_ablation", table)
    base, full = results[0], results[-1]
    # Orders of magnitude end to end.
    assert base.latency_s / full.latency_s > 50
    assert base.energy_j / full.energy_j > 20
    # Every rung is at least as fast as the previous one.
    for prev, nxt in zip(results, results[1:]):
        assert nxt.latency_s <= prev.latency_s * 1.02
    # The block-wise ops (rungs 3+) deliver more than RSPU alone.
    rspu_gain = results[0].latency_s / results[2].latency_s
    bppo_gain = results[2].latency_s / results[-1].latency_s
    assert bppo_gain > rspu_gain
