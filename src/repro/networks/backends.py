"""Point-operation backends: exact global search vs block-parallel.

The PNN backbones never call point operations directly; they go through a
backend, so the *same trained architecture* can run with the original
global-search operations (PointAcc baseline), or with block-wise
operations over any partitioning strategy (uniform / KD-tree / octree /
Fractal).  The accuracy experiments (Fig. 3, 14, 17) are exactly this
swap.

Both backends are thin views over shared machinery: :class:`ExactBackend`
wraps the reference ops of :mod:`repro.geometry.ops`, and
:class:`BlockBackend` resolves every call through the kernel registry of
:mod:`repro.core.dispatch` — the per-block loop, the padded stack, and
the fused ragged CSR kernels are interchangeable (bit-identical) there,
so the backend only carries *which* partition to use and *how* to pick a
kernel (``kernel="auto"`` cost-model dispatch by default).
"""

from __future__ import annotations

import abc

import numpy as np

from ..core import blocks as core_blocks
from ..core import bppo, dispatch
from ..geometry import ops as exact_ops
from ..partition.base import Partitioner, get_partitioner
from ..runtime.cache import PartitionCache

__all__ = ["PointOpsBackend", "ExactBackend", "BlockBackend", "make_backend"]


class PointOpsBackend(abc.ABC):
    """Interface consumed by the network stages."""

    name: str = "abstract"

    @abc.abstractmethod
    def sample(self, coords: np.ndarray, num_samples: int) -> np.ndarray:
        """FPS-style sampling: ``(num_samples,)`` indices into ``coords``."""

    @abc.abstractmethod
    def group(
        self, coords: np.ndarray, center_indices: np.ndarray, radius: float, k: int
    ) -> np.ndarray:
        """Ball-query grouping: ``(m, k)`` indices into ``coords``."""

    @abc.abstractmethod
    def interpolate_indices(
        self,
        coords: np.ndarray,
        center_indices: np.ndarray,
        candidate_indices: np.ndarray,
        k: int = 3,
    ) -> tuple[np.ndarray, np.ndarray]:
        """KNN + inverse-distance weights for feature propagation.

        Returns ``(indices, weights)`` of shapes ``(m, k)``; indices are
        global point ids drawn from ``candidate_indices``; weight rows
        sum to one.
        """


class ExactBackend(PointOpsBackend):
    """Original global-search operations (accuracy-lossless anchor)."""

    name = "exact"

    def sample(self, coords: np.ndarray, num_samples: int) -> np.ndarray:
        return exact_ops.farthest_point_sample(coords, num_samples)

    def group(self, coords, center_indices, radius, k):
        return exact_ops.ball_query(coords[center_indices], coords, radius, k)

    def interpolate_indices(self, coords, center_indices, candidate_indices, k=3):
        candidate_indices = np.asarray(candidate_indices, dtype=np.int64)
        local = exact_ops.knn_search(
            coords[center_indices], coords[candidate_indices], k
        )
        idx = candidate_indices[local]
        coords = np.asarray(coords, dtype=np.float64)
        weights = exact_ops.idw_weights(coords[center_indices], coords[idx])
        return idx, weights


class BlockBackend(PointOpsBackend):
    """Block-parallel operations over a partitioning strategy.

    Partitions are cached per coordinate set through the runtime's
    shared :class:`~repro.runtime.cache.PartitionCache` (keyed by content
    hash), so a forward pass that calls sample/group/interpolate on the
    same level partitions once — matching the hardware, where Fractal
    runs once per stage input.  The cache also carries the ragged CSR
    layout of each partition, so repeated ragged-kernel calls never
    rebuild it.

    Every operation resolves through the kernel registry of
    :mod:`repro.core.dispatch`.  ``kernel`` picks the implementation:
    ``"auto"`` (default) lets the cost model choose per call — from
    *measured* per-block centre counts, since the backend always holds
    the concrete centre ids — while ``"loop" | "stacked" | "ragged"``
    pin one path.  The parity suite guarantees bit-identical results, so
    the choice only affects speed.

    ``batched`` is the legacy flag of the pre-dispatch API: ``False``
    pins the serial per-block loop, ``True`` (old default) means
    cost-model dispatch.  Use ``kernel`` in new code.
    """

    def __init__(
        self,
        partitioner: Partitioner,
        cache_size: int = 8,
        *,
        kernel: str = "auto",
        batched: bool | None = None,
    ):
        self.partitioner = partitioner
        self.name = partitioner.name
        # Legacy flag maps onto the dispatcher only when no explicit
        # kernel was chosen — same precedence as BatchExecutor's
        # use_batched_ops, so the two APIs never disagree.
        if batched is False and kernel == "auto":
            kernel = "loop"
        self.kernel = dispatch.validate_kernel(kernel)
        self._cache = PartitionCache(partitioner, maxsize=cache_size)

    def _structure(self, coords: np.ndarray) -> core_blocks.BlockStructure:
        structure, _ = self._cache.get(coords)
        return structure

    def _measured_counts(
        self, structure: core_blocks.BlockStructure, center_indices
    ) -> np.ndarray | None:
        """Real per-block centre counts — the backend always holds the
        concrete centre ids, so the cost model never has to estimate.
        ``None`` when a pinned kernel would never consult the cost model.
        """
        if self.kernel != "auto":
            return None
        return np.bincount(
            structure.block_of_point()[
                np.asarray(center_indices, dtype=np.int64)
            ],
            minlength=structure.num_blocks,
        )

    def sample(self, coords: np.ndarray, num_samples: int) -> np.ndarray:
        structure = self._structure(coords)
        quotas = (
            bppo.allocate_samples(structure.block_sizes, num_samples, clamp=True)
            if self.kernel == "auto"
            else None
        )
        indices, _ = dispatch.run_op(
            "fps", structure, coords, num_samples,
            kernel=self.kernel, num_centers=num_samples, center_counts=quotas,
        )
        return indices

    def group(self, coords, center_indices, radius, k):
        structure = self._structure(coords)
        neighbors, _ = dispatch.run_op(
            "ball_query", structure, coords, center_indices, radius, k,
            kernel=self.kernel, num_centers=len(center_indices),
            center_counts=self._measured_counts(structure, center_indices),
        )
        return neighbors

    def interpolate_indices(self, coords, center_indices, candidate_indices, k=3):
        structure = self._structure(coords)
        idx, _ = dispatch.run_op(
            "knn", structure, coords, center_indices, candidate_indices, k,
            kernel=self.kernel, num_centers=len(center_indices),
            center_counts=self._measured_counts(structure, center_indices),
        )
        coords = np.asarray(coords, dtype=np.float64)
        weights = exact_ops.idw_weights(coords[center_indices], coords[idx])
        return idx, weights


def make_backend(
    name: str,
    *,
    max_points_per_block: int = 64,
    kernel: str = "auto",
    batched: bool | None = None,
) -> PointOpsBackend:
    """Factory: ``exact`` or any partitioner name from :mod:`repro.partition`.

    ``kernel`` selects the block-op implementation (``auto`` cost-model
    dispatch by default); ``batched`` is the legacy boolean equivalent
    (``False`` → ``"loop"``).
    """
    if name == "exact":
        return ExactBackend()
    return BlockBackend(
        get_partitioner(name, max_points_per_block=max_points_per_block),
        kernel=kernel,
        batched=batched,
    )
