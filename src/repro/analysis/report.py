"""Table formatting and ratio helpers shared by benches and examples."""

from __future__ import annotations

import math
from typing import Iterable, Sequence

__all__ = ["format_table", "geomean", "ratio", "format_si"]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render a fixed-width text table (the benches' output format)."""
    rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the paper's averaging convention for speedups)."""
    vals = [float(v) for v in values]
    if not vals:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in vals):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def ratio(base: float, other: float) -> float:
    """``base / other`` with a divide-by-zero guard."""
    if other == 0:
        raise ZeroDivisionError("ratio denominator is zero")
    return base / other


def format_si(value: float, unit: str = "") -> str:
    """Human-size formatting (1.5K, 33K, 1.2M...)."""
    for threshold, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "K")):
        if abs(value) >= threshold:
            return f"{value / threshold:.3g}{suffix}{unit}"
    return f"{value:.3g}{unit}"
