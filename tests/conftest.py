"""Shared fixtures: deterministic RNGs and representative point clouds."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import FractalConfig, fractal_partition
from repro.datasets import load_cloud


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def gaussian_cloud(rng) -> np.ndarray:
    """A 1 K unstructured cloud (worst case for shape-aware methods)."""
    return rng.normal(size=(1000, 3))


@pytest.fixture
def scene_coords() -> np.ndarray:
    """An 8 K S3DIS-like scene (surface-aligned, non-uniform density)."""
    return load_cloud("s3dis", 8192, seed=7).coords.astype(np.float64)


@pytest.fixture
def object_coords() -> np.ndarray:
    """A 1 K ModelNet-like object."""
    return load_cloud("modelnet40", 1024, seed=3).coords.astype(np.float64)


@pytest.fixture
def small_tree(gaussian_cloud):
    return fractal_partition(gaussian_cloud, FractalConfig(threshold=64))


@pytest.fixture
def small_structure(small_tree):
    return small_tree.block_structure()
