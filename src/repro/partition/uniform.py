"""Space-uniform grid partitioning (PNNPU's strategy, paper Fig. 3(b)).

Divides the bounding box into equal cells with a single streaming pass —
minimal preprocessing cost, but cell populations follow the (highly
non-uniform) point density, producing severely imbalanced blocks and the
accuracy loss the paper reports (≈9 % for PointNeXt segmentation).

A cell's search space is the cell itself: the uniform grid has no
hierarchy to borrow neighbours from, which is exactly the border-loss
mechanism behind its accuracy gap.
"""

from __future__ import annotations

import numpy as np

from ..core.blocks import Block, BlockStructure, PartitionCost
from ..core.delta import GridCertificate, attach_certificate
from .base import Partitioner

__all__ = ["UniformPartitioner"]


class UniformPartitioner(Partitioner):
    """Uniform grid over the cloud's bounding box.

    Args:
        target_block_size: desired *average* points per occupied cell;
            the grid resolution is chosen so
            ``n / expected_occupied_cells ≈ target_block_size`` if points
            were uniform.  Real clouds concentrate on surfaces, so actual
            cell populations vary wildly — the point of Fig. 3(b).
        resolution: explicit cells-per-axis override (testing hook).
    """

    name = "uniform"
    supports_fused_build = True

    def __init__(self, target_block_size: int = 256, resolution: int | None = None):
        if target_block_size < 1:
            raise ValueError(f"target_block_size must be >= 1, got {target_block_size}")
        if resolution is not None and resolution < 1:
            raise ValueError(f"resolution must be >= 1, got {resolution}")
        self.target_block_size = target_block_size
        self.resolution = resolution

    def _pick_resolution(self, n: int) -> int:
        if self.resolution is not None:
            return self.resolution
        # cells ≈ n / target on each axis: r^3 ≈ n / target.
        wanted_cells = max(1.0, n / self.target_block_size)
        return max(1, int(round(wanted_cells ** (1.0 / 3.0))))

    def partition(self, coords: np.ndarray, on_leaf=None) -> BlockStructure:
        n = len(coords)
        if n == 0:
            raise ValueError("cannot partition an empty point cloud")
        r = self._pick_resolution(n)

        lo = coords.min(axis=0)
        hi = coords.max(axis=0)
        extent = np.where(hi - lo > 0, hi - lo, 1.0)
        # One global streaming pass computes every point's cell id.
        cell = np.clip(((coords - lo) / extent * r).astype(np.int64), 0, r - 1)
        cell_id = cell[:, 0] * r * r + cell[:, 1] * r + cell[:, 2]

        order = np.argsort(cell_id, kind="stable")
        sorted_ids = cell_id[order]
        boundaries = np.nonzero(np.diff(sorted_ids))[0] + 1
        groups = np.split(order, boundaries)

        blocks = [Block(np.sort(g).astype(np.int64), depth=1) for g in groups]
        if on_leaf is not None:
            for block in blocks:
                on_leaf(block.indices)
        spaces = [b.indices for b in blocks]
        cost = PartitionCost(passes=[n], levels=1)
        structure = BlockStructure(
            num_points=n,
            blocks=blocks,
            search_spaces=spaces,
            cost=cost,
            strategy=self.name,
        )
        attach_certificate(structure, GridCertificate(cell_id, r))
        return structure
