"""Extension bench — incremental Fractal maintenance vs per-frame rebuild.

The §VI-D adaptation applied to streaming data: a LiDAR-style sequence
where ~10 % of points churn per frame.  Compares the points touched by
incremental maintenance (:class:`FractalUpdater`) against a full Fractal
rebuild each frame, and verifies the maintained partition stays valid.
"""

import numpy as np

from repro.analysis import format_table
from repro.core import FractalConfig
from repro.core.update import FractalUpdater
from repro.datasets import lidar_scan

from _common import emit

N_POINTS = 16_384
CHURN = 0.1
FRAMES = 6


def run_dynamic():
    frame0 = lidar_scan(N_POINTS, seed=0)
    updater = FractalUpdater(frame0.coords.astype(np.float64),
                             FractalConfig(threshold=256))
    rng = np.random.default_rng(1)
    rows = []
    total_update, total_rebuild = 0, 0
    for frame in range(1, FRAMES + 1):
        structure, live = updater.structure()
        churn = int(updater.num_points * CHURN)
        before = updater.stats.update_work
        updater.remove(rng.choice(live, size=churn, replace=False))
        drift = np.array([0.5 * frame, 0.0, 0.0])
        new_pts = lidar_scan(churn, seed=frame).coords.astype(np.float64) + drift
        updater.insert(new_pts)
        update_work = updater.stats.update_work - before
        rebuild_work = updater.rebuild_work()
        total_update += update_work
        total_rebuild += rebuild_work
        structure, _ = updater.structure()
        structure.validate()
        rows.append([
            frame, churn, update_work, rebuild_work,
            f"{rebuild_work / max(update_work, 1):.1f}x",
            structure.num_blocks,
            int(structure.max_block_size),
        ])
    rows.append(["total", "-", total_update, total_rebuild,
                 f"{total_rebuild / max(total_update, 1):.1f}x", "-", "-"])
    table = format_table(
        ["frame", "churned", "update work", "rebuild work",
         "saving", "blocks", "max block"],
        rows,
        title=f"Incremental Fractal maintenance, {N_POINTS} pts, "
              f"{int(100 * CHURN)}% churn per frame",
    )
    return table, total_update, total_rebuild


def test_dynamic_update(benchmark):
    table, update, rebuild = benchmark.pedantic(run_dynamic, rounds=1, iterations=1)
    emit("dynamic_update", table)
    # Incremental maintenance touches far fewer points than rebuilding.
    assert rebuild > 3 * update
