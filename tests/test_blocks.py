"""Tests for the generic block structures and cost counters."""

import numpy as np
import pytest

from repro.core import Block, BlockStructure, PartitionCost


class TestBlock:
    def test_coerces_indices(self):
        b = Block([3, 1, 2])
        assert b.indices.dtype == np.int64
        assert len(b) == 3

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            Block(np.array([], dtype=np.int64))

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            Block(np.zeros((2, 2), dtype=np.int64))

    def test_rejects_negative_depth(self):
        with pytest.raises(ValueError, match="depth"):
            Block(np.array([0]), depth=-1)


class TestPartitionCost:
    def test_aggregates(self):
        cost = PartitionCost(sorts=[8, 4, 4], traversals=[16, 16], passes=[16], levels=2)
        assert cost.total_sorted_elements == 16
        assert cost.total_traversed_elements == 32
        assert cost.num_sorts == 3
        assert cost.num_traversals == 2

    def test_empty_defaults(self):
        cost = PartitionCost()
        assert cost.total_sorted_elements == 0
        assert cost.levels == 0


class TestBlockStructure:
    def _make(self, blocks, spaces, n):
        return BlockStructure(
            num_points=n,
            blocks=blocks,
            search_spaces=spaces,
            cost=PartitionCost(),
        )

    def test_validate_passes_for_partition(self):
        blocks = [Block(np.array([0, 1])), Block(np.array([2, 3]))]
        spaces = [np.array([0, 1, 2, 3]), np.array([2, 3])]
        self._make(blocks, spaces, 4).validate()

    def test_validate_catches_overlap(self):
        blocks = [Block(np.array([0, 1])), Block(np.array([1, 2]))]
        spaces = [b.indices for b in blocks]
        with pytest.raises(ValueError, match="overlap"):
            self._make(blocks, spaces, 3).validate()

    def test_validate_catches_missing_points(self):
        blocks = [Block(np.array([0, 1]))]
        spaces = [blocks[0].indices]
        with pytest.raises(ValueError, match="not covered"):
            self._make(blocks, spaces, 3).validate()

    def test_validate_requires_space_superset(self):
        blocks = [Block(np.array([0, 1])), Block(np.array([2]))]
        spaces = [np.array([0]), np.array([2])]  # first space misses point 1
        with pytest.raises(ValueError, match="search space"):
            self._make(blocks, spaces, 3).validate()

    def test_mismatched_spaces_rejected_at_init(self):
        with pytest.raises(ValueError, match="search spaces"):
            self._make([Block(np.array([0]))], [], 1)

    def test_block_of_point(self):
        blocks = [Block(np.array([0, 2])), Block(np.array([1, 3]))]
        spaces = [b.indices for b in blocks]
        owner = self._make(blocks, spaces, 4).block_of_point()
        assert owner.tolist() == [0, 1, 0, 1]

    def test_size_accessors(self, small_structure):
        sizes = small_structure.block_sizes
        assert sizes.sum() == small_structure.num_points
        assert small_structure.max_block_size == sizes.max()
        assert (small_structure.search_sizes >= sizes).all()
