"""Experiment analysis: tables, ratios, sweeps."""

from .report import format_si, format_table, geomean, ratio
from .sweeps import ThresholdPoint, scale_sweep, threshold_sweep

__all__ = [
    "ThresholdPoint",
    "format_si",
    "format_table",
    "geomean",
    "ratio",
    "scale_sweep",
    "threshold_sweep",
]
