"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_partition_defaults(self):
        args = build_parser().parse_args(["partition"])
        assert args.dataset == "s3dis"
        assert args.block_size == 256

    def test_simulate_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--accelerator", "TPU"])


class TestCommands:
    def test_partition_command(self, capsys):
        rc = main(["partition", "--dataset", "modelnet40", "--points", "1024",
                   "--block-size", "64", "--strategy", "fractal,uniform"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fractal" in out and "uniform" in out
        assert "1,024 points" in out

    def test_partition_from_npy(self, capsys, tmp_path):
        coords = np.random.default_rng(0).normal(size=(500, 3))
        path = tmp_path / "cloud.npy"
        np.save(path, coords)
        rc = main(["partition", "--input", str(path), "--strategy", "fractal",
                   "--block-size", "64"])
        assert rc == 0
        assert "500 points" in capsys.readouterr().out

    def test_simulate_accelerator(self, capsys):
        rc = main(["simulate", "--workload", "PN++(c)", "--points", "1K",
                   "--accelerator", "FractalCloud"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "FractalCloud" in out
        assert "latency" in out and "mlp" in out

    def test_simulate_gpu(self, capsys):
        rc = main(["simulate", "--workload", "PN++(c)", "--points", "1K",
                   "--accelerator", "GPU"])
        assert rc == 0
        assert "GPU" in capsys.readouterr().out

    def test_compare(self, capsys):
        rc = main(["compare", "--workload", "PNXt(s)", "--scales", "8K,33K"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "speedup over GPU" in out
        assert "FractalCloud" in out

    def test_batch_run(self, capsys):
        rc = main(["batch-run", "--dataset", "modelnet40", "--clouds", "3",
                   "--points", "256", "--partitioner", "kdtree",
                   "--block-size", "32", "--workers", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "batch-run: 3 clouds on kdtree" in out
        assert "throughput" in out and "clouds/s" in out

    def test_batch_run_serial_mode(self, capsys):
        rc = main(["batch-run", "--dataset", "modelnet40", "--clouds", "2",
                   "--points", "128", "--partitioner", "uniform",
                   "--block-size", "32", "--workers", "1", "--mode", "serial",
                   "--no-batched-ops"])
        assert rc == 0
        assert "uniform" in capsys.readouterr().out

    def test_batch_run_rejects_unknown_partitioner(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["batch-run", "--partitioner", "exact"])
