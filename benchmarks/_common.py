"""Shared helpers for the benchmark harness.

Every bench regenerates one of the paper's tables or figures: it computes
the series with the library, prints it (visible with ``pytest -s``), and
writes it to ``benchmarks/results/<name>.txt`` so the artefacts survive
the run.  EXPERIMENTS.md indexes the outputs against the paper's numbers.
"""

from __future__ import annotations

import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit(name: str, text: str) -> str:
    """Print a result block and persist it under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    banner = f"\n===== {name} =====\n{text}\n"
    print(banner)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as fh:
        fh.write(text + "\n")
    return path
