"""Design-space exploration over the FractalCloud hardware parameters.

The paper picks its threshold by "greedy design-space exploration"
(§VI-C); the same methodology applies to the micro-architectural knobs —
RSPU core count, lanes per core, buffer capacity, block size.  This
module sweeps configurations, estimates area from a simple per-resource
model anchored to the Fig. 12 budget, and extracts the latency/area
Pareto frontier.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable

from ..networks.workloads import WorkloadSpec
from .accelerator import AcceleratorSim
from .configs import FRACTALCLOUD, AcceleratorConfig

__all__ = ["DesignPoint", "estimate_area_mm2", "sweep", "pareto_frontier"]

# Per-resource area model anchored to the Fig. 12 module budget:
# 16 RSPUs x 8 lanes = 0.26 mm2 -> ~2.03e-3 mm2 per lane;
# 274 KB SRAM = 0.52 mm2 -> ~1.9e-3 mm2 per KB;
# PE array 16x16 = 0.48 mm2 -> 1.875e-3 mm2 per MAC.
_MM2_PER_POINT_LANE = 0.26 / (16 * 8)
_MM2_PER_SRAM_KB = 0.52 / 274.0
_MM2_PER_PE = 0.48 / 256.0
_MM2_FIXED = 0.24  # engine + gather/pool + RISC-V + NoC/DMA


def estimate_area_mm2(config: AcceleratorConfig) -> float:
    """Area estimate of a configuration (mm², 28 nm)."""
    return (
        _MM2_FIXED
        + config.num_point_units * config.lanes_per_unit * _MM2_PER_POINT_LANE
        + config.sram_kb * _MM2_PER_SRAM_KB
        + config.pe_rows * config.pe_cols * _MM2_PER_PE
    )


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated configuration."""

    num_point_units: int
    lanes_per_unit: int
    sram_kb: float
    block_size: int
    latency_s: float
    energy_j: float
    area_mm2: float

    @property
    def edp(self) -> float:
        """Energy-delay product (the usual DSE objective)."""
        return self.latency_s * self.energy_j


def sweep(
    spec: WorkloadSpec,
    num_points: int,
    *,
    unit_counts: Iterable[int] = (4, 8, 16, 32),
    lane_counts: Iterable[int] = (4, 8, 16),
    sram_kbs: Iterable[float] = (274.0,),
    block_sizes: Iterable[int] = (256,),
) -> list[DesignPoint]:
    """Evaluate the cross-product of hardware knobs on one workload."""
    points = []
    for units in unit_counts:
        for lanes in lane_counts:
            for sram in sram_kbs:
                for bs in block_sizes:
                    config = replace(
                        FRACTALCLOUD,
                        name=f"FC-u{units}l{lanes}s{sram:g}b{bs}",
                        num_point_units=units,
                        lanes_per_unit=lanes,
                        sram_kb=sram,
                        block_size=bs,
                    )
                    result = AcceleratorSim(config).run(spec, num_points)
                    points.append(DesignPoint(
                        num_point_units=units,
                        lanes_per_unit=lanes,
                        sram_kb=sram,
                        block_size=bs,
                        latency_s=result.latency_s,
                        energy_j=result.energy_j,
                        area_mm2=estimate_area_mm2(config),
                    ))
    return points


def pareto_frontier(
    points: list[DesignPoint], *, objectives: tuple[str, str] = ("latency_s", "area_mm2")
) -> list[DesignPoint]:
    """Non-dominated points under two minimisation objectives."""
    a, b = objectives
    frontier = []
    for p in points:
        dominated = any(
            getattr(q, a) <= getattr(p, a)
            and getattr(q, b) <= getattr(p, b)
            and (getattr(q, a) < getattr(p, a) or getattr(q, b) < getattr(p, b))
            for q in points
        )
        if not dominated:
            frontier.append(p)
    return sorted(frontier, key=lambda p: getattr(p, a))
