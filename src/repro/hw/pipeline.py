"""Frame-pipelined throughput model (double-buffered streaming inference).

The latency results treat one inference in isolation; a deployed edge
device streams frames, and the accelerator's phases use *different*
resources (fractal engine, RSPUs, PE array, DMA), so consecutive frames
overlap: while frame i occupies the PE array, frame i+1 can already be
partitioning and sampling.

Given a traced :class:`~repro.hw.results.RunResult`, this model computes
the steady-state initiation interval as the largest per-resource busy
time (the classic pipeline bound) and reports achievable frames/second
against the single-frame latency.
"""

from __future__ import annotations

from dataclasses import dataclass

from .results import RunResult

__all__ = ["PipelineEstimate", "pipeline_throughput", "RESOURCE_OF_PHASE"]

#: Which hardware resource each phase occupies.
RESOURCE_OF_PHASE = {
    "partition": "fractal_engine",
    "sample": "rspu",
    "neighbor": "rspu",
    "interpolate": "rspu",
    "gather": "gather_unit",
    "mlp": "pe_array",
    "pool": "pool_unit",
    "io": "dma",
}


@dataclass
class PipelineEstimate:
    """Steady-state streaming throughput of one configuration."""

    latency_s: float
    initiation_interval_s: float
    bottleneck_resource: str
    resource_busy_s: dict[str, float]

    @property
    def frames_per_second(self) -> float:
        return 1.0 / self.initiation_interval_s if self.initiation_interval_s else 0.0

    @property
    def overlap_speedup(self) -> float:
        """Throughput gain of pipelining vs back-to-back frames."""
        return self.latency_s / self.initiation_interval_s


def pipeline_throughput(result: RunResult) -> PipelineEstimate:
    """Pipeline bound from a run's phase totals.

    Uses phase aggregates (trace not required): the initiation interval
    of a resource-pipelined stream is the maximum total busy time of any
    single resource.
    """
    busy: dict[str, float] = {}
    for phase, stats in result.phases.items():
        resource = RESOURCE_OF_PHASE.get(phase, "other")
        busy[resource] = busy.get(resource, 0.0) + stats.seconds
    bottleneck = max(busy, key=busy.get)
    return PipelineEstimate(
        latency_s=result.latency_s,
        initiation_interval_s=busy[bottleneck],
        bottleneck_resource=bottleneck,
        resource_busy_s=busy,
    )
