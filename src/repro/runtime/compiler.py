"""Compiler: workload spec x input scale x partitioner → :class:`Program`.

Mirrors the paper's software stack (§V-A "large operations are
automatically tiled by the compiler based on input size and hardware
configurations"): it instantiates the stage pipeline at the requested
scale, materialises a representative input cloud from the workload's
dataset family, and partitions every stage's input point set with the
accelerator's strategy to obtain measured block statistics.

Stage inputs below level 0 are approximated by random subsampling of the
level-0 cloud — FPS output is a spatially uniform thinning, so block-size
distributions of the subsample match those of the true sampled set (the
approximation is validated in ``tests/test_compiler.py``).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..core.blocks import PartitionCost
from ..datasets import load_cloud
from ..networks.workloads import WorkloadSpec
from ..partition import get_partitioner
from .cache import clear_all_partition_caches
from .program import PartitionStats, Program, StagePlan

__all__ = ["compile_program", "clear_caches"]


@lru_cache(maxsize=32)
def _cached_cloud(dataset: str, num_points: int, seed: int) -> np.ndarray:
    return load_cloud(dataset, num_points, seed).coords.astype(np.float64)


@lru_cache(maxsize=256)
def _cached_partition_stats(
    dataset: str,
    total_points: int,
    stage_points: int,
    strategy: str,
    block_size: int,
    seed: int,
) -> PartitionStats:
    coords = _cached_cloud(dataset, total_points, seed)
    if stage_points < len(coords):
        rng = np.random.default_rng(seed + stage_points)
        coords = coords[rng.choice(len(coords), size=stage_points, replace=False)]
    structure = get_partitioner(strategy, max_points_per_block=block_size)(coords)
    return PartitionStats(
        strategy=strategy,
        block_sizes=structure.block_sizes,
        search_sizes=structure.search_sizes,
        cost=structure.cost,
    )


def clear_caches() -> None:
    """Drop all runtime caches (tests that vary generators use this).

    Clears the compiler's ``lru_cache``s *and* every live
    :class:`~repro.runtime.cache.PartitionCache` (backends, executors),
    including the ragged CSR layouts riding on cached structures — a
    test that swaps dataset generators must never see a stale partition.
    """
    _cached_cloud.cache_clear()
    _cached_partition_stats.cache_clear()
    clear_all_partition_caches()


def _weight_bytes(spec: WorkloadSpec, bytes_per_scalar: int = 2) -> float:
    """Total parameter bytes of the workload's MLPs (FP16)."""
    total = 0
    ch = spec.in_channels
    for sa in spec.sa_stages:
        c_in = ch + 3
        for c_out in sa.mlp:
            total += c_in * c_out
            c_in = c_out
        ch = sa.mlp[-1]
    if spec.task == "cls":
        c_in = ch + 3
        for c_out in spec.global_mlp:
            total += c_in * c_out
            c_in = c_out
        for c_out in spec.head:
            total += c_in * c_out
            c_in = c_out
    else:
        skip = [spec.in_channels] + [sa.mlp[-1] for sa in spec.sa_stages[:-1]]
        for depth, fp in enumerate(spec.fp_stages):
            c_in = ch + skip[len(spec.sa_stages) - 1 - depth]
            for c_out in fp.mlp:
                total += c_in * c_out
                c_in = c_out
            ch = fp.mlp[-1]
        c_in = ch
        for c_out in spec.head:
            total += c_in * c_out
            c_in = c_out
    return float(total * bytes_per_scalar)


def compile_program(
    spec: WorkloadSpec,
    num_points: int,
    partitioner: str = "none",
    block_size: int = 256,
    seed: int = 0,
) -> Program:
    """Compile ``spec`` at ``num_points`` for a partitioning strategy.

    Args:
        spec: a Table I workload.
        num_points: input scale.
        partitioner: the accelerator's strategy ("none" skips partition
            statistics entirely).
        block_size: partition threshold (th / BS).
        seed: dataset seed.

    Returns:
        A :class:`Program` with per-stage partition statistics attached
        to every stage that partitions its input (SA and FP stages).
    """
    if num_points < spec.min_points():
        raise ValueError(
            f"{spec.key} needs at least {spec.min_points()} points, got {num_points}"
        )
    program = Program(
        workload_key=spec.key,
        num_points=num_points,
        partitioner=partitioner,
        weight_bytes=_weight_bytes(spec),
    )
    for stage in spec.concrete(num_points):
        partition = None
        if partitioner != "none" and stage.kind in ("sa", "fp"):
            # SA stages partition their input set; FP stages partition the
            # *dense* side (centres of the interpolation).
            stage_points = stage.n_in if stage.kind == "sa" else stage.n_out
            if stage_points > block_size:
                partition = _cached_partition_stats(
                    spec.dataset, num_points, stage_points,
                    partitioner, block_size, seed,
                )
            else:
                partition = PartitionStats(
                    strategy=partitioner,
                    block_sizes=np.array([stage_points], dtype=np.int64),
                    search_sizes=np.array([stage_points], dtype=np.int64),
                    cost=PartitionCost(levels=0),
                )
        program.stages.append(StagePlan(stage=stage, partition=partition))
    return program
