"""Accelerator comparison across input scales (a compact Fig. 13 + Fig. 1).

Sweeps PointNeXt segmentation from 4 K to 289 K points and prints, for
every accelerator and the GPU, the latency, energy, and DRAM traffic —
showing the crossover the paper builds its case on: baselines competitive
at small scale, FractalCloud pulling away as n grows.

Run:  python examples/accelerator_comparison.py
"""

from repro.analysis import format_table
from repro.hw import AcceleratorSim, GPUModel, SOTA_CONFIGS
from repro.networks import get_workload

SCALES = [4096, 33_000, 131_000, 289_000]


def main() -> None:
    spec = get_workload("PNXt(s)")
    gpu = GPUModel()
    sims = {name: AcceleratorSim(cfg) for name, cfg in SOTA_CONFIGS.items()}

    for n in SCALES:
        g = gpu.run(spec, n)
        rows = [[
            "GPU", f"{g.latency_s * 1e3:.2f}", "1.0x",
            f"{g.energy_j * 1e3:.0f}", "1.0x", "-",
        ]]
        for name, sim in sims.items():
            r = sim.run(spec, n)
            rows.append([
                name,
                f"{r.latency_s * 1e3:.2f}",
                f"{g.latency_s / r.latency_s:.1f}x",
                f"{r.energy_j * 1e3:.1f}",
                f"{g.energy_j / r.energy_j:.0f}x",
                f"{r.dram_bytes / 1e6:.0f} MB",
            ])
        print(format_table(
            ["platform", "latency ms", "speedup", "energy mJ",
             "energy saving", "DRAM"],
            rows,
            title=f"\nPNXt(s) @ {n:,} points",
        ))


if __name__ == "__main__":
    main()
