"""Tests for the PNN building blocks (SA / FP / global stages)."""

import numpy as np
import pytest

from repro.networks import ExactBackend, FPStage, GlobalSA, InvResBlock, SAStage
from repro.networks.layers import softmax_cross_entropy


@pytest.fixture
def backend():
    return ExactBackend()


class TestInvResBlock:
    def test_forward_backward_shapes(self, rng):
        block = InvResBlock(8, rng)
        x = rng.normal(size=(10, 8))
        out = block.forward(x)
        assert out.shape == x.shape
        grad = block.backward(rng.normal(size=(10, 8)))
        assert grad.shape == x.shape

    def test_residual_path_carries_gradient(self, rng):
        block = InvResBlock(4, rng)
        x = np.abs(rng.normal(size=(6, 4))) + 0.5  # keep activations alive
        block.forward(x)
        grad = block.backward(np.ones((6, 4)))
        assert np.abs(grad).sum() > 0


class TestSAStage:
    def test_forward_shapes(self, rng, backend):
        stage = SAStage(n_out=16, radius=0.5, k=8, in_channels=0,
                        mlp_widths=[16, 32], rng=rng)
        coords = rng.normal(size=(64, 3))
        c, f, idx = stage.forward(coords, None, backend)
        assert c.shape == (16, 3)
        assert f.shape == (16, 32)
        assert idx.shape == (16,)
        assert set(idx.tolist()) <= set(range(64))

    def test_forward_with_features(self, rng, backend):
        stage = SAStage(n_out=8, radius=0.5, k=4, in_channels=5,
                        mlp_widths=[16], rng=rng)
        coords = rng.normal(size=(32, 3))
        feats = rng.normal(size=(32, 5))
        _, f, _ = stage.forward(coords, feats, backend)
        assert f.shape == (8, 16)

    def test_backward_returns_feature_grad(self, rng, backend):
        stage = SAStage(n_out=8, radius=0.5, k=4, in_channels=5,
                        mlp_widths=[16], rng=rng)
        coords = rng.normal(size=(32, 3))
        feats = rng.normal(size=(32, 5))
        _, f, _ = stage.forward(coords, feats, backend)
        grad = stage.backward(np.ones_like(f))
        assert grad.shape == feats.shape

    def test_backward_none_without_features(self, rng, backend):
        stage = SAStage(n_out=8, radius=0.5, k=4, in_channels=0,
                        mlp_widths=[16], rng=rng)
        coords = rng.normal(size=(32, 3))
        _, f, _ = stage.forward(coords, None, backend)
        assert stage.backward(np.ones_like(f)) is None

    def test_parameter_gradients_nonzero(self, rng, backend):
        stage = SAStage(n_out=8, radius=0.8, k=4, in_channels=0,
                        mlp_widths=[8], rng=rng)
        coords = rng.normal(size=(32, 3))
        _, f, _ = stage.forward(coords, None, backend)
        stage.zero_grad()
        stage.backward(np.ones_like(f))
        assert any(np.abs(p.grad).sum() > 0 for p in stage.parameters())

    def test_maxmean_pooling(self, rng, backend):
        stage = SAStage(n_out=8, radius=0.5, k=4, in_channels=0,
                        mlp_widths=[8], rng=rng, pooling="maxmean")
        coords = rng.normal(size=(32, 3))
        _, f, _ = stage.forward(coords, None, backend)
        assert f.shape == (8, 8)
        grad = stage.backward(np.ones_like(f))
        assert grad is None  # no input features

    def test_post_blocks(self, rng, backend):
        stage = SAStage(n_out=8, radius=0.5, k=4, in_channels=0,
                        mlp_widths=[8], rng=rng, post_blocks=2)
        coords = rng.normal(size=(32, 3))
        _, f, _ = stage.forward(coords, None, backend)
        stage.backward(np.ones_like(f))  # must not raise

    def test_invalid_pooling(self, rng):
        with pytest.raises(ValueError, match="pooling"):
            SAStage(8, 0.5, 4, 0, [8], rng, pooling="sum")

    def test_n_out_clamped_to_input(self, rng, backend):
        stage = SAStage(n_out=100, radius=0.5, k=4, in_channels=0,
                        mlp_widths=[8], rng=rng)
        coords = rng.normal(size=(20, 3))
        c, f, _ = stage.forward(coords, None, backend)
        assert len(c) == 20


class TestGlobalSA:
    def test_forward_backward(self, rng):
        stage = GlobalSA(in_channels=6, mlp_widths=[12], rng=rng)
        coords = rng.normal(size=(30, 3))
        feats = rng.normal(size=(30, 6))
        g = stage.forward(coords, feats)
        assert g.shape == (12,)
        grad = stage.backward(np.ones(12))
        assert grad.shape == feats.shape


class TestFPStage:
    def test_forward_shapes(self, rng, backend):
        stage = FPStage(sparse_channels=8, skip_channels=4, mlp_widths=[16], rng=rng)
        dense = rng.normal(size=(40, 3))
        skip = rng.normal(size=(40, 4))
        sparse_idx = np.arange(0, 40, 4)  # 10 sparse points
        sparse_feats = rng.normal(size=(10, 8))
        out = stage.forward(dense, skip, sparse_idx, sparse_feats, backend)
        assert out.shape == (40, 16)

    def test_backward_shapes(self, rng, backend):
        stage = FPStage(sparse_channels=8, skip_channels=4, mlp_widths=[16], rng=rng)
        dense = rng.normal(size=(40, 3))
        skip = rng.normal(size=(40, 4))
        sparse_idx = np.arange(0, 40, 4)
        sparse_feats = rng.normal(size=(10, 8))
        out = stage.forward(dense, skip, sparse_idx, sparse_feats, backend)
        g_sparse, g_skip = stage.backward(np.ones_like(out))
        assert g_sparse.shape == (10, 8)
        assert g_skip.shape == (40, 4)

    def test_no_skip(self, rng, backend):
        stage = FPStage(sparse_channels=8, skip_channels=0, mlp_widths=[16], rng=rng)
        dense = rng.normal(size=(20, 3))
        sparse_idx = np.arange(0, 20, 4)
        sparse_feats = rng.normal(size=(5, 8))
        out = stage.forward(dense, None, sparse_idx, sparse_feats, backend)
        g_sparse, g_skip = stage.backward(np.ones_like(out))
        assert g_skip is None
        assert g_sparse.shape == (5, 8)

    def test_interpolation_weights_drive_gradient(self, rng, backend):
        """A sparse point's gradient magnitude reflects how many dense
        points it served — conservation of the scattered gradient."""
        stage = FPStage(sparse_channels=2, skip_channels=0, mlp_widths=[2], rng=rng)
        dense = rng.normal(size=(30, 3))
        sparse_idx = np.array([0, 10, 20])
        sparse_feats = rng.normal(size=(3, 2))
        stage.forward(dense, None, sparse_idx, sparse_feats, backend)
        g_sparse, _ = stage.backward(np.ones((30, 2)))
        assert np.abs(g_sparse).sum() > 0


class TestEndToEndGradient:
    def test_sa_chain_learns_direction(self, rng, backend):
        """One gradient step on an SA stage + linear head must reduce the
        loss — the sanity check that gradient plumbing is not garbage."""
        from repro.networks.layers import SharedMLP

        stage = SAStage(n_out=16, radius=0.8, k=8, in_channels=0,
                        mlp_widths=[8], rng=rng)
        head = SharedMLP([8, 2], rng, final_relu=False)
        coords = rng.normal(size=(64, 3))
        labels = np.zeros(16, dtype=np.int64)

        def run():
            _, f, _ = stage.forward(coords, None, backend)
            logits = head.forward(f)
            return logits, softmax_cross_entropy(logits, labels)

        logits, (loss0, grad, _) = run()
        stage.zero_grad(); head.zero_grad()
        stage.backward(head.backward(grad))
        for p in stage.parameters() + head.parameters():
            p.value -= 0.5 * p.grad
        _, (loss1, _, _) = run()
        assert loss1 < loss0
