"""Tests for the serving layer: planner, windowed micro-batcher,
telemetry, and the load generator / wire format.

The proof obligations mirror the parity suite's: window boundaries,
bucket composition, and dedup replays may change *when* work happens,
never *what* comes out — every served result is index-level bit-identical
to ``run(fuse=True)`` over the same finite stream and to the serial
per-cloud reference.
"""

import io
import os
import subprocess
import sys
import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from test_batch_parity import TestExecutorParity, make_cloud

from repro.runtime import BatchExecutor, PipelineSpec, content_key, result_key
from repro.serve import (
    LoadSpec,
    ServeTelemetry,
    WindowConfig,
    WindowedServer,
    first_fit_buckets,
    generate,
    generate_tenants,
    latency_percentiles,
    plan_buckets,
    read_stream,
    read_tenant_stream,
    singleton_count,
    tenant_specs,
    write_stream,
    write_tenant_stream,
)


def sized_members(sizes):
    """Planner members shaped like the executor's: (index, coords, None)."""
    return [(i, np.zeros((n, 3)), None) for i, n in enumerate(sizes)]


def bucket_sizes(buckets):
    return [[len(coords) for _, coords, _ in bucket] for bucket in buckets]


class TestPlanner:
    def test_empty_and_single(self):
        assert plan_buckets([]) == []
        members = sized_members([7])
        assert bucket_sizes(plan_buckets(members)) == [[7]]

    def test_multi_member_buckets_respect_caps(self):
        members = sized_members([90, 70, 60, 40, 30, 20, 10])
        buckets = plan_buckets(members, max_points=100, max_spread=3.0)
        placed = sorted(i for bucket in buckets for i, _, _ in bucket)
        assert placed == list(range(7))  # exact partition of the input
        for bucket in buckets:
            sizes = [len(coords) for _, coords, _ in bucket]
            if len(sizes) > 1:
                assert sum(sizes) <= 100
                assert max(sizes) <= 3.0 * min(sizes)

    def test_oversized_cloud_gets_own_bucket(self):
        members = sized_members([500, 40, 30])
        buckets = plan_buckets(members, max_points=100)
        assert bucket_sizes(buckets) == [[500], [40, 30]]

    def test_best_fit_beats_greedy_on_adversarial_mix(self):
        # Greedy ascending packs [30, 40] then strands 50 and 60 alone;
        # best-fit-decreasing anchors [60, 40] and [50, 30].
        members = sized_members([60, 50, 40, 30])
        greedy = first_fit_buckets(members, max_points=100)
        best = plan_buckets(members, max_points=100)
        assert singleton_count(greedy) == 2
        assert singleton_count(best) == 0
        for bucket in best:
            assert sum(len(c) for _, c, _ in bucket) <= 100

    def test_deterministic_for_fixed_input(self):
        rng = np.random.default_rng(0)
        sizes = [int(n) for n in rng.integers(1, 300, size=40)]
        members = sized_members(sizes)
        first = plan_buckets(members, max_points=512, max_spread=4.0)
        second = plan_buckets(members, max_points=512, max_spread=4.0)
        assert bucket_sizes(first) == bucket_sizes(second)
        assert [[i for i, _, _ in b] for b in first] == [
            [i for i, _, _ in b] for b in second
        ]

    def test_buckets_ordered_by_first_member(self):
        members = sized_members([200, 20, 210, 25])
        buckets = plan_buckets(members, max_spread=2.0)
        firsts = [bucket[0][0] for bucket in buckets]
        assert firsts == sorted(firsts)
        for bucket in buckets:
            indices = [i for i, _, _ in bucket]
            assert indices == sorted(indices)

    def test_rejects_empty_members(self):
        with pytest.raises(ValueError, match="positive size"):
            plan_buckets([(0, np.zeros((0, 3)), None)])

    @settings(deadline=None, max_examples=60)
    @given(
        sizes=st.lists(st.integers(1, 400), min_size=1, max_size=24),
        cap=st.one_of(st.none(), st.integers(64, 1024)),
        spread=st.one_of(st.none(), st.floats(1.0, 8.0)),
    )
    def test_never_more_singletons_than_greedy(self, sizes, cap, spread):
        """The bin-packing property of the ISSUE: on any size mix the
        planner strands at most as many singleton fallbacks as the greedy
        first-fit pass it replaced, and multi-member buckets always obey
        both caps."""
        members = sized_members(sizes)
        best = plan_buckets(members, max_points=cap, max_spread=spread)
        greedy = first_fit_buckets(members, max_points=cap, max_spread=spread)
        assert singleton_count(best) <= singleton_count(greedy)
        placed = sorted(i for bucket in best for i, _, _ in bucket)
        assert placed == list(range(len(sizes)))
        for bucket in best:
            bucket_ns = [len(c) for _, c, _ in bucket]
            if len(bucket_ns) > 1:
                if cap is not None:
                    assert sum(bucket_ns) <= cap
                if spread is not None:
                    assert max(bucket_ns) <= spread * min(bucket_ns)


def serve_all(engine, clouds, pipeline, window):
    server = WindowedServer(engine, window)
    results = list(server.serve(iter(clouds), pipeline))
    return results, server.telemetry


class TestWindowedServeParity:
    """serve ≡ run(fuse=True) ≡ serial reference, index-level."""

    PIPELINE = PipelineSpec(radius=0.4, group_size=8)

    def assert_serial_parity(self, clouds, results, partitioner, block_size=16):
        assert [r.index for r in results] == list(range(len(clouds)))
        for coords, result in zip(clouds, results):
            ref = TestExecutorParity.reference_pipeline(
                np.asarray(coords, dtype=np.float64), partitioner,
                block_size, self.PIPELINE,
            )
            assert np.array_equal(ref[0], result.sampled)
            assert np.array_equal(ref[1], result.neighbors)
            assert np.array_equal(ref[2], result.grouped)
            assert np.array_equal(ref[3], result.interpolated)

    @pytest.mark.parametrize("partitioner", ("kdtree", "fractal", "uniform"))
    def test_matches_fused_run_and_serial_reference(self, partitioner):
        # Mixed sizes straddling bucket boundaries + exact duplicate
        # frames, served in windows smaller than the stream.
        clouds = [make_cloud(n, seed=2000 + n, duplicates=(n % 2 == 0))
                  for n in (1, 5, 40, 64, 181, 200)]
        clouds = clouds + [clouds[2], clouds[4]]
        engine = BatchExecutor(
            partitioner, block_size=16, max_workers=2, fuse_max_spread=None
        )
        served, _ = serve_all(
            engine, clouds, self.PIPELINE, WindowConfig(max_clouds=3)
        )
        self.assert_serial_parity(clouds, served, partitioner)

        fused = BatchExecutor(
            partitioner, block_size=16, max_workers=1, fuse=True,
            fuse_max_spread=None,
        ).run(clouds, self.PIPELINE)
        for a, b in zip(served, fused.results):
            assert np.array_equal(a.sampled, b.sampled)
            assert np.array_equal(a.neighbors, b.neighbors)
            assert np.array_equal(a.grouped, b.grouped)
            assert np.array_equal(a.interpolated, b.interpolated)

    def test_duplicates_replayed_across_windows(self):
        """A frame repeated in a *later* window replays the canonical
        result (reused flag, shared arrays) instead of recomputing."""
        clouds = [make_cloud(n, seed=2100 + n) for n in (50, 60, 70)]
        batch = clouds + [clouds[0], clouds[1], clouds[0]]
        engine = BatchExecutor("kdtree", block_size=16, max_workers=1)
        served, telemetry = serve_all(
            engine, batch, self.PIPELINE, WindowConfig(max_clouds=3)
        )
        self.assert_serial_parity(batch, served, "kdtree")
        assert [r.reused for r in served] == [
            False, False, False, True, True, True
        ]
        assert telemetry.reused_clouds == 3

    def test_dedup_disabled_recomputes(self):
        clouds = [make_cloud(40, seed=7)] * 3
        engine = BatchExecutor(
            "kdtree", block_size=16, max_workers=1, reuse_results=False
        )
        served, _ = serve_all(
            engine, clouds, self.PIPELINE, WindowConfig(max_clouds=2)
        )
        assert not any(r.reused for r in served)
        self.assert_serial_parity(clouds, served, "kdtree")

    def test_window_of_one_is_pure_streaming(self):
        clouds = [make_cloud(n, seed=2200 + n) for n in (30, 45, 60)]
        engine = BatchExecutor("kdtree", block_size=16, max_workers=1)
        served, telemetry = serve_all(
            engine, clouds, self.PIPELINE,
            WindowConfig(max_clouds=1, max_wait=0.01),
        )
        self.assert_serial_parity(clouds, served, "kdtree")
        assert telemetry.windows == 3
        assert telemetry.singleton_clouds == 3  # nothing to fuse with

    def test_features_flow_through_serving(self):
        rng = np.random.default_rng(23)
        clouds = [
            (rng.normal(size=(n, 3)), rng.normal(size=(n, 5)))
            for n in (40, 44, 48, 52)
        ]
        engine = BatchExecutor("kdtree", block_size=16, max_workers=1)
        server = WindowedServer(engine, WindowConfig(max_clouds=4))
        served = list(server.serve(iter(clouds), self.PIPELINE))
        fused = BatchExecutor(
            "kdtree", block_size=16, max_workers=1, fuse=True
        ).run(clouds, self.PIPELINE)
        for a, b in zip(served, fused.results):
            assert a.grouped.shape[-1] == 5
            assert np.array_equal(a.grouped, b.grouped)
            assert np.array_equal(a.interpolated, b.interpolated)

    def test_empty_stream(self):
        engine = BatchExecutor("kdtree", block_size=16, max_workers=1)
        served, telemetry = serve_all(
            engine, [], self.PIPELINE, WindowConfig(max_clouds=4)
        )
        assert served == []
        assert telemetry.windows == 0

    def test_source_error_propagates_after_served_results(self):
        clouds = [make_cloud(40, seed=1), make_cloud(50, seed=2)]

        def broken():
            yield from clouds
            raise RuntimeError("sensor unplugged")

        engine = BatchExecutor("kdtree", block_size=16, max_workers=1)
        server = WindowedServer(engine, WindowConfig(max_clouds=8))
        stream = server.serve(broken(), self.PIPELINE)
        results = []
        with pytest.raises(RuntimeError, match="sensor unplugged"):
            for result in stream:
                results.append(result)
        # Everything that arrived before the failure was still served.
        self.assert_serial_parity(clouds, results, "kdtree")


class TestWindowTimeout:
    def test_window_closes_on_timeout_not_count(self):
        """A slow source never fills W; the deadline closes windows and
        parity still holds for every emitted result."""
        clouds = [make_cloud(n, seed=2300 + n) for n in (40, 44, 48, 52)]

        def slow():
            for cloud in clouds:
                yield cloud
                time.sleep(0.08)

        engine = BatchExecutor("kdtree", block_size=16, max_workers=1)
        telemetry = ServeTelemetry(window_capacity=16)
        server = WindowedServer(
            engine, WindowConfig(max_clouds=16, max_wait=0.02),
            telemetry=telemetry,
        )
        pipeline = TestWindowedServeParity.PIPELINE
        served = list(server.serve(slow(), pipeline))
        TestWindowedServeParity().assert_serial_parity(clouds, served, "kdtree")
        # The 16-cloud budget was never the closing condition.
        assert telemetry.windows >= 2
        assert telemetry.timeout_windows >= 1
        assert telemetry.occupancy_sum == len(clouds)

    def test_fast_source_closes_on_count(self):
        clouds = [make_cloud(40 + n, seed=2400 + n) for n in range(6)]
        engine = BatchExecutor("kdtree", block_size=16, max_workers=1)
        telemetry = ServeTelemetry(window_capacity=3)
        server = WindowedServer(
            engine, WindowConfig(max_clouds=3, max_wait=5.0),
            telemetry=telemetry,
        )
        served = list(server.serve(iter(clouds),
                                   TestWindowedServeParity.PIPELINE))
        assert len(served) == 6
        assert telemetry.windows == 2
        assert telemetry.mean_occupancy == 1.0


class TestBackpressure:
    def test_in_flight_default_and_validation(self):
        engine = BatchExecutor("kdtree", max_workers=3)
        assert engine.in_flight == 6
        engine = BatchExecutor("kdtree", max_workers=3, in_flight=5)
        assert engine.in_flight == 5
        with pytest.raises(ValueError, match="in_flight"):
            BatchExecutor("kdtree", in_flight=0)

    def test_stream_honours_custom_in_flight(self):
        pulled = []

        def source():
            for i in range(12):
                pulled.append(i)
                yield make_cloud(30, seed=2500 + i)

        engine = BatchExecutor(
            "kdtree", block_size=16, max_workers=2, in_flight=3,
            reuse_results=False,
        )
        stream = engine.stream(source())
        next(stream)
        assert len(pulled) <= 4  # window (3) + the one being submitted
        list(stream)
        assert len(pulled) == 12

    def test_serve_does_not_drain_unbounded_source(self):
        pulled = threading.Event()
        count = [0]

        def source():
            for i in range(200):
                count[0] += 1
                if count[0] > 40:
                    pulled.set()  # would mean backpressure failed
                yield make_cloud(25, seed=2600 + i)

        engine = BatchExecutor(
            "kdtree", block_size=16, max_workers=1, in_flight=2,
            reuse_results=False,
        )
        server = WindowedServer(
            engine, WindowConfig(max_clouds=4, max_wait=0.02)
        )
        stream = server.serve(source(), TestWindowedServeParity.PIPELINE)
        first = next(stream)
        assert first.index == 0
        # in_flight (2) + one window (4) + one in the puller's hand.
        assert count[0] <= 2 + 4 + 1
        assert not pulled.is_set()
        stream.close()  # stops the puller thread


class TestTelemetry:
    def test_percentiles_known_values(self):
        values = [i / 1000 for i in range(1, 101)]  # 1..100 ms
        p50, p95, p99 = latency_percentiles(values)
        assert p50 == pytest.approx(0.0505)
        assert p95 == pytest.approx(0.09505)
        assert p99 == pytest.approx(0.09901)
        assert latency_percentiles([]) == (0.0, 0.0, 0.0)

    def test_rolling_window_bounds_memory(self):
        telemetry = ServeTelemetry(window_capacity=4, rolling=10)
        for i in range(100):
            telemetry.record_latency(i)
        assert len(telemetry.latencies) == 10
        p50, _, _ = telemetry.percentiles()
        assert p50 == pytest.approx(94.5)  # only the last 10 survive

    def test_tick_every_n_windows(self):
        telemetry = ServeTelemetry(window_capacity=4, every=2)
        lines = []
        for _ in range(4):
            telemetry.record_window(
                size=4, buckets=1, fused=3, singletons=1, reused=0,
                queue_depth=2, timed_out=False,
            )
            line = telemetry.tick()
            if line:
                lines.append(line)
        assert len(lines) == 2
        assert "p50/p95/p99" in lines[0] and "occupancy" in lines[0]

    def test_report_aggregates(self):
        telemetry = ServeTelemetry(window_capacity=4)
        telemetry.record_window(size=4, buckets=1, fused=4, singletons=0,
                                reused=0, queue_depth=3, timed_out=False)
        telemetry.record_window(size=2, buckets=0, fused=0, singletons=1,
                                reused=1, queue_depth=1, timed_out=True)
        for ms in (1, 2, 3, 4, 5, 6):
            telemetry.record_latency(ms / 1000)
        report = telemetry.report(wall_seconds=0.5)
        assert report.clouds == 6 and report.windows == 2
        assert report.fused_clouds == 4 and report.singleton_clouds == 1
        assert report.reused_clouds == 1 and report.timeout_windows == 1
        assert report.mean_occupancy == pytest.approx(6 / 8)
        assert report.max_queue_depth == 3
        assert report.fused_ratio == pytest.approx(0.8)
        assert report.clouds_per_second == pytest.approx(12.0)
        assert "p50/p95/p99" in report.format()

    def test_validation(self):
        with pytest.raises(ValueError, match="window_capacity"):
            ServeTelemetry(window_capacity=0)
        with pytest.raises(ValueError, match="rolling"):
            ServeTelemetry(window_capacity=1, rolling=0)


class TestLoadgen:
    def test_seeded_and_deterministic(self):
        spec = LoadSpec(clouds=20, min_points=30, max_points=80,
                        dup_rate=0.3, seed=11)
        first = list(generate(spec))
        second = list(generate(spec))
        assert len(first) == 20
        assert all(np.array_equal(a, b) for a, b in zip(first, second))
        for cloud in first:
            assert 30 <= len(cloud) <= 80
            assert cloud.dtype == np.float64

    def test_duplicates_are_exact_repeats(self):
        spec = LoadSpec(clouds=40, min_points=20, max_points=40,
                        dup_rate=0.5, dup_window=4, seed=5)
        clouds = list(generate(spec))
        repeats = sum(
            1 for i, c in enumerate(clouds)
            if any(c is earlier for earlier in clouds[:i])
        )
        assert repeats > 0  # same object => exact content => dedup-able

    def test_no_duplicates_at_zero_rate(self):
        clouds = list(generate(LoadSpec(clouds=15, dup_rate=0.0, seed=2)))
        keys = {c.tobytes() for c in clouds}
        assert len(keys) == 15

    def test_validation(self):
        with pytest.raises(ValueError, match="clouds"):
            LoadSpec(clouds=0)
        with pytest.raises(ValueError, match="min_points"):
            LoadSpec(min_points=50, max_points=20)
        with pytest.raises(ValueError, match="dup_rate"):
            LoadSpec(dup_rate=1.5)
        with pytest.raises(ValueError, match="burst"):
            LoadSpec(burst=0)

    def test_wire_roundtrip_bytesio(self):
        clouds = list(generate(LoadSpec(clouds=8, min_points=10,
                                        max_points=30, seed=3)))
        buf = io.BytesIO()
        assert write_stream(buf, clouds) == 8
        buf.seek(0)
        back = list(read_stream(buf))
        assert len(back) == 8
        for a, b in zip(clouds, back):
            assert np.array_equal(a, b) and b.dtype == np.float64
            assert b.flags.writeable

    def test_wire_roundtrip_over_pipe(self):
        """The wire format must survive a real OS pipe (short reads,
        no seeking) — the `repro loadgen | repro serve` transport."""
        clouds = list(generate(LoadSpec(clouds=5, min_points=10,
                                        max_points=500, seed=4)))
        read_fd, write_fd = os.pipe()

        def producer():
            with os.fdopen(write_fd, "wb") as fh:
                write_stream(fh, clouds)

        thread = threading.Thread(target=producer)
        thread.start()
        with os.fdopen(read_fd, "rb") as fh:
            back = list(read_stream(fh))
        thread.join()
        assert all(np.array_equal(a, b) for a, b in zip(clouds, back))

    def test_wire_rejects_garbage_and_truncation(self):
        with pytest.raises(ValueError, match="npy"):
            list(read_stream(io.BytesIO(b"not a cloud stream")))
        buf = io.BytesIO()
        write_stream(buf, [np.zeros((4, 3))])
        truncated = io.BytesIO(buf.getvalue()[:-8])
        with pytest.raises(ValueError, match="truncated"):
            list(read_stream(truncated))


class TestPersistentPool:
    """The ROADMAP churn fix: one pool per engine, not one per window.

    The singleton fallback of every window and every ``stream()`` call
    must reuse the same server-owned pool; ``close()`` joins it.
    """

    def unfusable(self, count, seed):
        # Pairwise spread > 1.01 so nothing fuses and every window takes
        # the singleton fallback (the old per-window-pool path).
        return [make_cloud(30 * (i + 1), seed=seed + i) for i in range(count)]

    def test_pool_identity_across_windows(self):
        engine = BatchExecutor(
            "kdtree", block_size=16, max_workers=2, reuse_results=False,
            fuse_max_spread=1.01,
        )
        assert engine.pool is None  # lazy: nothing parallel ran yet
        server = WindowedServer(engine, WindowConfig(max_clouds=2))
        pools = []
        for start in (0, 2, 4):
            clouds = self.unfusable(2, seed=5000 + start)
            list(server.serve(iter(clouds), TestWindowedServeParity.PIPELINE))
            pools.append(engine.pool)
        assert pools[0] is not None
        assert pools[1] is pools[0] and pools[2] is pools[0]

    def test_stream_and_windows_share_one_pool(self):
        engine = BatchExecutor(
            "kdtree", block_size=16, max_workers=2, reuse_results=False,
            fuse_max_spread=1.01,
        )
        list(engine.stream(self.unfusable(3, seed=5100)))
        streamed_pool = engine.pool
        engine.execute_window(
            [(i, np.asarray(c, dtype=np.float64), None)
             for i, c in enumerate(self.unfusable(2, seed=5200))],
            PipelineSpec(),
        )
        assert streamed_pool is not None
        assert engine.pool is streamed_pool

    def test_close_joins_and_allows_reuse(self):
        engine = BatchExecutor(
            "kdtree", block_size=16, max_workers=2, reuse_results=False
        )
        results = list(engine.stream(self.unfusable(2, seed=5300)))
        assert len(results) == 2
        engine.close()
        assert engine.pool is None
        engine.close()  # idempotent
        # a closed engine lazily rebuilds on next use
        results = list(engine.stream(self.unfusable(2, seed=5400)))
        assert len(results) == 2
        assert engine.pool is not None
        engine.close()

    def test_context_manager(self):
        with BatchExecutor(
            "kdtree", block_size=16, max_workers=2, reuse_results=False
        ) as engine:
            list(engine.stream(self.unfusable(2, seed=5500)))
            assert engine.pool is not None
        assert engine.pool is None

    def test_serial_engine_never_builds_a_pool(self):
        engine = BatchExecutor("kdtree", block_size=16, max_workers=1)
        list(engine.stream(self.unfusable(2, seed=5600)))
        assert engine.pool is None
        engine.close()  # no-op, no error

    def test_server_close_delegates_to_engine(self):
        engine = BatchExecutor(
            "kdtree", block_size=16, max_workers=2, reuse_results=False,
            fuse_max_spread=1.01,
        )
        with WindowedServer(engine, WindowConfig(max_clouds=2)) as server:
            clouds = self.unfusable(2, seed=5700)
            list(server.serve(iter(clouds), TestWindowedServeParity.PIPELINE))
            assert engine.pool is not None
        assert engine.pool is None


class TestLoadgenProfiles:
    def test_profile_validation(self):
        with pytest.raises(ValueError, match="profile"):
            LoadSpec(profile="weekly")
        with pytest.raises(ValueError, match="drift_period"):
            LoadSpec(profile="diurnal", drift_period=1)
        with pytest.raises(ValueError, match="drift_amplitude"):
            LoadSpec(profile="diurnal", drift_amplitude=1.5)
        with pytest.raises(ValueError, match="adversary_spread"):
            LoadSpec(profile="adversarial", adversary_spread=1.0)
        with pytest.raises(ValueError, match="adversary_points"):
            LoadSpec(profile="adversarial", adversary_points=1)

    def test_diurnal_deterministic_and_bounded(self):
        spec = LoadSpec(clouds=64, min_points=40, max_points=200,
                        dup_rate=0.0, profile="diurnal", drift_period=16,
                        drift_amplitude=0.8, seed=21)
        first = [len(c) for c in generate(spec)]
        second = [len(c) for c in generate(spec)]
        assert first == second
        assert all(40 <= n <= 200 for n in first)
        # The band actually moves: early-cycle highs vs mid-cycle lows.
        crest = [n for i, n in enumerate(first) if i % 16 in (3, 4, 5)]
        trough = [n for i, n in enumerate(first) if i % 16 in (11, 12, 13)]
        assert np.mean(crest) > np.mean(trough) + 40

    def test_adversarial_defeats_packing(self):
        """The adversarial mix strands (nearly) everything as singleton
        fallbacks where the uniform mix fuses most of the window — the
        planner stress source the ROADMAP asked for."""
        cap = 512
        adversarial = LoadSpec(
            clouds=24, min_points=32, max_points=cap, dup_rate=0.0,
            profile="adversarial", adversary_points=cap, seed=8,
        )
        uniform = LoadSpec(clouds=24, min_points=200, max_points=260,
                           dup_rate=0.0, seed=8)

        def singletons(spec):
            members = [
                (i, c, None) for i, c in enumerate(generate(spec))
            ]
            buckets = plan_buckets(members, max_points=cap, max_spread=4.0)
            return singleton_count(buckets)

        assert singletons(adversarial) >= 16
        assert singletons(uniform) <= 2

    def test_adversarial_sizes_deterministic(self):
        spec = LoadSpec(clouds=20, min_points=32, max_points=512,
                        profile="adversarial", seed=3)
        assert [len(c) for c in generate(spec)] == \
            [len(c) for c in generate(spec)]

    def test_inference_validation(self):
        with pytest.raises(ValueError, match="corrupt_rate"):
            LoadSpec(profile="inference", corrupt_rate=1.5)
        with pytest.raises(ValueError, match="corrupt_severity"):
            LoadSpec(profile="inference", corrupt_severity=0)

    def test_inference_deterministic(self):
        spec = LoadSpec(clouds=24, min_points=48, max_points=160,
                        dup_rate=0.0, profile="inference",
                        corrupt_rate=0.5, seed=11)
        first = list(generate(spec))
        second = list(generate(spec))
        assert len(first) == 24
        assert all(np.array_equal(a, b) for a, b in zip(first, second))

    def test_inference_corruptions_perturb_the_stream(self):
        base = dict(clouds=16, min_points=48, max_points=160,
                    dup_rate=0.0, seed=11)
        clean = list(generate(
            LoadSpec(profile="inference", corrupt_rate=0.0, **base)
        ))
        dirty = list(generate(
            LoadSpec(profile="inference", corrupt_rate=1.0, **base)
        ))
        # Every cloud drew a corruption, so every cloud differs (some by
        # shape — the dropout/occlusion families remove points).
        assert all(
            a.shape != b.shape or not np.array_equal(a, b)
            for a, b in zip(clean, dirty)
        )


class TestMultiTenantLoadgen:
    def test_tenant_specs_deterministic_mix(self):
        base = LoadSpec(clouds=10, min_points=40, max_points=100, seed=5)
        specs = tenant_specs(3, base)
        assert list(specs) == ["t0", "t1", "t2"]
        again = tenant_specs(3, base)
        assert specs == again
        # rate/size actually differ across the mix
        assert len({s.seed for s in specs.values()}) == 3
        assert len({(s.min_points, s.max_points) for s in specs.values()}) == 3
        assert len({s.burst for s in specs.values()}) == 3
        with pytest.raises(ValueError, match="count"):
            tenant_specs(0)

    def test_generate_tenants_merges_deterministically(self):
        specs = tenant_specs(
            3, LoadSpec(clouds=6, min_points=20, max_points=40, seed=9)
        )
        first = list(generate_tenants(specs))
        second = list(generate_tenants(specs))
        assert [t for t, _ in first] == [t for t, _ in second]
        assert all(np.array_equal(a, b)
                   for (_, a), (_, b) in zip(first, second))
        counts = {name: 0 for name in specs}
        for name, _ in first:
            counts[name] += 1
        assert counts == {"t0": 6, "t1": 6, "t2": 6}
        with pytest.raises(ValueError, match="at least one"):
            list(generate_tenants({}))

    def test_tagged_wire_roundtrip(self):
        specs = tenant_specs(
            2, LoadSpec(clouds=4, min_points=10, max_points=30, seed=6)
        )
        pairs = list(generate_tenants(specs))
        buf = io.BytesIO()
        assert write_tenant_stream(buf, pairs) == 8
        buf.seek(0)
        back = list(read_tenant_stream(buf))
        assert [t for t, _ in back] == [t for t, _ in pairs]
        for (_, a), (_, b) in zip(pairs, back):
            assert np.array_equal(a, b) and b.dtype == np.float64
            assert b.flags.writeable

    def test_untagged_stream_defaults_to_t0(self):
        clouds = list(generate(LoadSpec(clouds=3, min_points=10,
                                        max_points=20, seed=7)))
        buf = io.BytesIO()
        write_stream(buf, clouds)
        buf.seek(0)
        back = list(read_tenant_stream(buf))
        assert [t for t, _ in back] == ["t0", "t0", "t0"]

    def test_dangling_tag_rejected(self):
        buf = io.BytesIO()
        write_tenant_stream(buf, [("a", np.zeros((4, 3)))])
        # append a tag with no cloud after it
        np.lib.format.write_array_header_1_0(
            buf, np.lib.format.header_data_from_array_1_0(np.array("b"))
        )
        buf.write(np.array("b").tobytes())
        buf.seek(0)
        with pytest.raises(ValueError, match="tag"):
            list(read_tenant_stream(buf))


class TestResultKey:
    """All three dedup surfaces (stream, run(fuse=True), serve) key
    replays through this one helper; its identity must be exact float64
    content of coords + features."""

    def test_exact_float64_identity(self):
        rng = np.random.default_rng(31)
        coords = rng.normal(size=(40, 3))
        nudged = coords.copy()
        nudged[0, 0] = np.nextafter(coords[0, 0], np.inf)
        assert result_key(coords, None) == result_key(coords.copy(), None)
        assert result_key(coords, None) != result_key(nudged, None)

    def test_features_participate(self):
        rng = np.random.default_rng(32)
        coords = rng.normal(size=(20, 3))
        feats = rng.normal(size=(20, 4))
        assert result_key(coords, feats) != result_key(coords, None)
        assert result_key(coords, feats) == result_key(coords, feats.copy())
        assert result_key(coords, feats) != result_key(coords, feats + 1e-12)

    def test_composes_full_precision_digests(self):
        coords = np.zeros((6, 3))
        assert result_key(coords, None) == content_key(coords, dtype=np.float64)


class TestImportOrder:
    """repro.runtime imports repro.serve.planner while repro.serve.window
    imports repro.runtime.executor; the serve package keeps the cycle
    open by loading its window module lazily.  Both import orders must
    keep working — in fresh interpreters, so no cached modules help."""

    @pytest.mark.parametrize("first", ["repro.serve", "repro.runtime"])
    def test_either_package_can_load_first(self, first):
        second = (
            "repro.runtime" if first == "repro.serve" else "repro.serve"
        )
        code = (
            f"import {first}\n"
            f"import {second}\n"
            "from repro.serve import WindowedServer, plan_buckets\n"
            "from repro.runtime import BatchExecutor\n"
            "print('ok')\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True,
            env={**os.environ, "PYTHONPATH": "src"},
            cwd=os.path.join(os.path.dirname(__file__), ".."),
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == "ok"


class TestExecutorSummary:
    def test_summary_reports_percentiles(self):
        clouds = [make_cloud(n, seed=2700 + n) for n in (40, 60, 80)]
        report = BatchExecutor("kdtree", block_size=16, max_workers=1).run(clouds)
        stats = report.stats
        assert 0 < stats.latency_p50 <= stats.latency_p95 <= stats.latency_p99
        line = report.summary()
        assert "throughput" in line and "p50/p95/p99" in line
        assert line == stats.summary()

    def test_empty_batch_summary(self):
        report = BatchExecutor("kdtree", max_workers=1).run([])
        assert report.stats.latency_p99 == 0.0
        assert "0 reused" in report.summary()


class TestFramesProfile:
    """The streaming-frames loadgen profile: one simulated sensor whose
    cloud jitters inside a motion ball and churns a tail fraction."""

    def frames_spec(self, **overrides):
        base = dict(clouds=10, min_points=200, max_points=240,
                    dup_rate=0.0, profile="frames", frame_motion=0.02,
                    frame_churn=0.0, seed=31)
        base.update(overrides)
        return LoadSpec(**base)

    def test_validation(self):
        with pytest.raises(ValueError, match="frame_motion"):
            LoadSpec(profile="frames", frame_motion=-0.1)
        with pytest.raises(ValueError, match="frame_churn"):
            LoadSpec(profile="frames", frame_churn=1.0)
        with pytest.raises(ValueError, match="frame_churn"):
            LoadSpec(profile="frames", frame_churn=-0.2)

    def test_seeded_and_deterministic(self):
        spec = self.frames_spec(frame_churn=0.15)
        first = list(generate(spec))
        second = list(generate(spec))
        assert len(first) == 10
        assert all(np.array_equal(a, b) for a, b in zip(first, second))

    def test_jitter_bounded_by_frame_motion(self):
        spec = self.frames_spec()
        frames = list(generate(spec))
        sizes = {len(f) for f in frames}
        assert len(sizes) == 1  # one sensor, constant frame size
        for old, new in zip(frames, frames[1:]):
            disp = np.linalg.norm(new - old, axis=1)
            assert disp.max() <= spec.frame_motion * (1 + 1e-9)
            assert disp.max() > 0  # the sensor actually moves

    def test_churn_replaces_tail_only(self):
        spec = self.frames_spec(frame_motion=1e-3, frame_churn=0.25)
        frames = list(generate(spec))
        n = len(frames[0])
        k = int(round(spec.frame_churn * n))
        assert k > 0
        churned = 0
        for old, new in zip(frames, frames[1:]):
            disp = np.linalg.norm(new - old, axis=1)
            # The retained prefix only jitters ...
            assert disp[: n - k].max() <= spec.frame_motion * (1 + 1e-9)
            # ... while churned tail rows are fresh dataset draws.
            if disp[n - k:].max() > 10 * spec.frame_motion:
                churned += 1
        assert churned >= len(frames) // 2

    def test_dup_rate_replays_same_frame_object(self):
        spec = self.frames_spec(clouds=40, dup_rate=0.5, seed=9)
        frames = list(generate(spec))
        repeats = sum(
            1 for i, f in enumerate(frames)
            if any(f is earlier for earlier in frames[:i])
        )
        assert repeats > 0


class TestDeltaServe:
    """Serving a frame stream through a delta-enabled engine: telemetry
    must split partition work into cold / patched / warm, and jitter-only
    streams must stay bit-identical to a rebuild-every-frame server."""

    PIPELINE = PipelineSpec(sample_ratio=0.25, radius=0.4, group_size=8)

    def frame_stream(self, clouds, churn, seed=17, motion=0.02):
        spec = LoadSpec(
            clouds=clouds, min_points=260, max_points=300, dup_rate=0.0,
            profile="frames", frame_motion=motion, frame_churn=churn,
            seed=seed,
        )
        return list(generate(spec))

    def test_telemetry_splits_partition_sources(self):
        frames = self.frame_stream(12, churn=0.1)
        engine = BatchExecutor("fractal", max_workers=1, delta=True)
        served, telemetry = serve_all(
            engine, frames, self.PIPELINE, WindowConfig(max_clouds=4)
        )
        assert len(served) == 12
        report = telemetry.report(wall_seconds=1.0)
        assert report.cold_clouds >= 1
        assert report.patched_clouds > 0
        assert (report.cold_clouds + report.patched_clouds
                + report.warm_clouds) == 12
        assert "partitions" in report.format()
        assert "cold/patched/warm" in telemetry.stats_line()

    def test_jitter_only_delta_serving_is_bit_identical(self):
        # Small jitter keeps every point on its side of the split
        # planes, so each frame takes the certificate path (proven
        # rebuild-identical) or a cold build, and the delta server must
        # emit exactly what a rebuild-every-frame server emits.  (Larger
        # motion may fail certificate verification and fall back to the
        # updater, which serves a valid but not rebuild-identical
        # partition — that path is covered by the executor delta suite.)
        frames = self.frame_stream(8, churn=0.0, motion=1e-4)
        window = WindowConfig(max_clouds=3)
        plain, _ = serve_all(
            BatchExecutor("fractal", max_workers=1, reuse_results=False),
            frames, self.PIPELINE, window,
        )
        delta, telemetry = serve_all(
            BatchExecutor(
                "fractal", max_workers=1, reuse_results=False, delta=True
            ),
            frames, self.PIPELINE, window,
        )
        sources = [r.partition_source for r in delta]
        assert set(sources) <= {"cold", "reused"}
        assert "reused" in sources
        for a, b in zip(plain, delta):
            assert np.array_equal(a.sampled, b.sampled)
            assert np.array_equal(a.neighbors, b.neighbors)
            assert np.array_equal(a.grouped, b.grouped)
            assert np.array_equal(a.interpolated, b.interpolated)
        report = telemetry.report(wall_seconds=1.0)
        assert report.patched_clouds > 0  # certificate reuses count here

    def test_plain_engine_reports_all_cold(self):
        clouds = [make_cloud(n, seed=3000 + n) for n in (40, 60, 80)]
        engine = BatchExecutor("kdtree", block_size=16, max_workers=1)
        _, telemetry = serve_all(
            engine, clouds, self.PIPELINE, WindowConfig(max_clouds=2)
        )
        report = telemetry.report(wall_seconds=1.0)
        assert report.cold_clouds == 3
        assert report.patched_clouds == 0 and report.warm_clouds == 0
        assert "cold/patched/warm" not in telemetry.stats_line()
