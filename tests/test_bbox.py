"""Unit + property tests for axis-aligned bounding boxes."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.geometry import AABB, aabb_of_points


def _finite_points(min_n=1, max_n=64):
    return st.lists(
        st.tuples(
            st.floats(-100, 100, allow_nan=False),
            st.floats(-100, 100, allow_nan=False),
            st.floats(-100, 100, allow_nan=False),
        ),
        min_size=min_n,
        max_size=max_n,
    ).map(lambda rows: np.array(rows, dtype=np.float64))


class TestAABBConstruction:
    def test_basic_fields(self):
        box = AABB(np.zeros(3), np.ones(3))
        assert np.allclose(box.extent, 1.0)
        assert np.allclose(box.center, 0.5)
        assert box.volume == pytest.approx(1.0)

    def test_rejects_inverted_corners(self):
        with pytest.raises(ValueError, match="lo must be <="):
            AABB(np.ones(3), np.zeros(3))

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError, match="shape"):
            AABB(np.zeros(2), np.ones(2))

    def test_degenerate_box_allowed(self):
        box = AABB(np.zeros(3), np.zeros(3))
        assert box.volume == 0.0

    def test_of_points_tight(self):
        pts = np.array([[0, 0, 0], [1, 2, 3], [-1, 0.5, 2]], dtype=float)
        box = aabb_of_points(pts)
        assert np.allclose(box.lo, [-1, 0, 0])
        assert np.allclose(box.hi, [1, 2, 3])

    def test_of_points_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            aabb_of_points(np.empty((0, 3)))

    def test_of_points_rejects_wrong_shape(self):
        with pytest.raises(ValueError, match=r"\(n, 3\)"):
            aabb_of_points(np.zeros((4, 2)))


class TestAABBOperations:
    def test_midpoint_is_minmax_average(self):
        box = AABB(np.array([0.0, -2.0, 1.0]), np.array([4.0, 2.0, 3.0]))
        assert box.midpoint(0) == pytest.approx(2.0)
        assert box.midpoint(1) == pytest.approx(0.0)
        assert box.midpoint(2) == pytest.approx(2.0)

    def test_longest_axis(self):
        box = AABB(np.zeros(3), np.array([1.0, 5.0, 2.0]))
        assert box.longest_axis == 1

    def test_split_partitions_volume(self):
        box = AABB(np.zeros(3), np.ones(3))
        lo, hi = box.split(0, 0.25)
        assert lo.volume + hi.volume == pytest.approx(box.volume)
        assert lo.hi[0] == pytest.approx(0.25)
        assert hi.lo[0] == pytest.approx(0.25)

    def test_split_outside_range_rejected(self):
        box = AABB(np.zeros(3), np.ones(3))
        with pytest.raises(ValueError, match="outside"):
            box.split(1, 2.0)

    def test_contains(self):
        box = AABB(np.zeros(3), np.ones(3))
        pts = np.array([[0.5, 0.5, 0.5], [2.0, 0.0, 0.0]])
        assert box.contains(pts).tolist() == [True, False]

    def test_union_covers_both(self):
        a = AABB(np.zeros(3), np.ones(3))
        b = AABB(np.array([2.0, 2.0, 2.0]), np.array([3.0, 3.0, 3.0]))
        u = a.union(b)
        assert np.allclose(u.lo, 0.0)
        assert np.allclose(u.hi, 3.0)

    def test_intersects(self):
        a = AABB(np.zeros(3), np.ones(3))
        b = AABB(np.array([0.5, 0.5, 0.5]), np.array([2.0, 2.0, 2.0]))
        c = AABB(np.array([5.0, 5.0, 5.0]), np.array([6.0, 6.0, 6.0]))
        assert a.intersects(b)
        assert b.intersects(a)
        assert not a.intersects(c)


class TestAABBProperties:
    @given(_finite_points())
    def test_box_contains_all_its_points(self, pts):
        box = aabb_of_points(pts)
        assert box.contains(pts).all()

    @given(_finite_points(min_n=2), st.integers(0, 2))
    def test_split_at_midpoint_separates_points(self, pts, dim):
        box = aabb_of_points(pts)
        mid = box.midpoint(dim)
        lo, hi = box.split(dim, mid)
        below = pts[pts[:, dim] <= mid]
        above = pts[pts[:, dim] > mid]
        if len(below):
            assert lo.contains(below).all()
        if len(above):
            assert hi.contains(above).all()
