"""Seeded serving-shaped load generation + a streamable cloud wire format.

Serving traffic is nothing like a tidy benchmark batch: cloud sizes are
ragged, popular frames repeat exactly (stalled sensors, retried
requests, hot assets), and arrivals come in bursts rather than a steady
drip.  :func:`generate` produces exactly that shape from one seed, so
every serve benchmark, test, and CI smoke run sees the same stream.

The wire format is a plain concatenation of ``.npy`` records — one per
cloud — so ``repro loadgen | repro serve`` works over a pipe with no
framing protocol of its own: :func:`write_stream` emits records,
:func:`read_stream` consumes them incrementally (bounded memory, works
on non-seekable pipes) until EOF.
"""

from __future__ import annotations

import ast
import time
from collections import deque
from collections.abc import Iterable, Iterator
from dataclasses import dataclass

import numpy as np

from ..datasets import load_cloud

__all__ = ["LoadSpec", "generate", "read_stream", "write_stream"]

_MAGIC = b"\x93NUMPY"


@dataclass(frozen=True)
class LoadSpec:
    """One seeded serving workload.

    Attributes:
        clouds: total frames to emit.
        min_points / max_points: cloud sizes are uniform in this
            (inclusive) range — the ragged-size dimension of the traffic.
        dup_rate: probability a frame is an exact repeat of a recent
            distinct frame (the dedup-able fraction of the stream).
        dup_window: repeats are drawn from the last this-many distinct
            frames (popularity is recency-biased in serving traffic).
        burst: frames per arrival burst; with ``interval > 0`` the
            generator sleeps between bursts to model paced sensors.
        interval: seconds between bursts (``0`` = firehose, no sleeping —
            what tests and CI use).
        dataset: synthetic dataset shapes are drawn from
            (:mod:`repro.datasets` names; ``lidar`` and ``s3dis`` require
            ``min_points >= 64``).
        seed: the one knob that fixes the whole stream.
    """

    clouds: int = 64
    min_points: int = 64
    max_points: int = 256
    dup_rate: float = 0.2
    dup_window: int = 8
    burst: int = 1
    interval: float = 0.0
    dataset: str = "modelnet40"
    seed: int = 0

    def __post_init__(self):
        if self.clouds < 1:
            raise ValueError(f"clouds must be >= 1, got {self.clouds}")
        if not 1 <= self.min_points <= self.max_points:
            raise ValueError(
                f"need 1 <= min_points <= max_points, got "
                f"{self.min_points}..{self.max_points}"
            )
        if not 0.0 <= self.dup_rate <= 1.0:
            raise ValueError(f"dup_rate must be in [0, 1], got {self.dup_rate}")
        if self.dup_window < 1:
            raise ValueError(f"dup_window must be >= 1, got {self.dup_window}")
        if self.burst < 1:
            raise ValueError(f"burst must be >= 1, got {self.burst}")
        if self.interval < 0:
            raise ValueError(f"interval must be >= 0, got {self.interval}")


def generate(spec: LoadSpec) -> Iterator[np.ndarray]:
    """Yield ``spec.clouds`` float64 ``(n, 3)`` clouds, deterministically.

    Duplicate frames are yielded as the *same array object* as their
    original, so their content hashes — and therefore the engine's
    dedup behaviour — match exactly.
    """
    rng = np.random.default_rng(spec.seed)
    recent: deque[np.ndarray] = deque(maxlen=spec.dup_window)
    emitted = 0
    while emitted < spec.clouds:
        if spec.interval > 0 and emitted:
            time.sleep(spec.interval)
        for _ in range(min(spec.burst, spec.clouds - emitted)):
            if recent and rng.random() < spec.dup_rate:
                cloud = recent[int(rng.integers(len(recent)))]
            else:
                n = int(rng.integers(spec.min_points, spec.max_points + 1))
                cloud = load_cloud(
                    spec.dataset, n, seed=spec.seed * 100_003 + emitted
                ).coords.astype(np.float64)
                recent.append(cloud)
            yield cloud
            emitted += 1


# -- wire format -------------------------------------------------------------


def write_stream(fh, clouds: Iterable[np.ndarray]) -> int:
    """Write clouds to ``fh`` as concatenated ``.npy`` records; returns
    the record count.  The inverse of :func:`read_stream`."""
    count = 0
    for cloud in clouds:
        arr = np.ascontiguousarray(np.asarray(cloud, dtype=np.float64))
        # Header and payload written by hand: numpy's write_array calls
        # ndarray.tofile on real file objects, which needs a seekable
        # stream and dies on the pipes this format exists for.
        np.lib.format.write_array_header_1_0(
            fh, np.lib.format.header_data_from_array_1_0(arr)
        )
        fh.write(arr.tobytes())
        count += 1
    fh.flush()
    return count


def _read_exact(fh, count: int) -> bytes:
    """Read exactly ``count`` bytes (pipes may return short reads)."""
    chunks = []
    remaining = count
    while remaining > 0:
        chunk = fh.read(remaining)
        if not chunk:
            break
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_stream(fh) -> Iterator[np.ndarray]:
    """Yield arrays from a concatenated ``.npy`` stream until EOF.

    Parses record headers by hand instead of looping :func:`numpy.load`
    so it works on non-seekable pipes (``repro loadgen | repro serve``)
    and never buffers more than one record.  A stream that ends mid-
    record raises ``ValueError`` — serving silently on truncated input
    would hide producer crashes.
    """
    while True:
        preamble = _read_exact(fh, len(_MAGIC) + 2)
        if not preamble:
            return
        if len(preamble) < len(_MAGIC) + 2 or preamble[: len(_MAGIC)] != _MAGIC:
            raise ValueError("input is not a concatenated .npy cloud stream")
        major = preamble[len(_MAGIC)]
        header_len_size = 2 if major == 1 else 4
        header_len_bytes = _read_exact(fh, header_len_size)
        if len(header_len_bytes) < header_len_size:
            raise ValueError("truncated .npy record header length")
        header_len = int.from_bytes(header_len_bytes, "little")
        header_bytes = _read_exact(fh, header_len)
        if len(header_bytes) < header_len:
            raise ValueError("truncated .npy record header")
        header = ast.literal_eval(header_bytes.decode("latin1"))
        dtype = np.dtype(header["descr"])
        if dtype.hasobject:
            raise ValueError("object-dtype records are not allowed on the wire")
        shape = tuple(header["shape"])
        count = int(np.prod(shape, dtype=np.int64)) if shape else 1
        data = _read_exact(fh, count * dtype.itemsize)
        if len(data) != count * dtype.itemsize:
            raise ValueError("truncated .npy record payload")
        arr = np.frombuffer(data, dtype=dtype)
        if header.get("fortran_order"):
            arr = arr.reshape(shape[::-1]).T
        else:
            arr = arr.reshape(shape)
        # frombuffer views are read-only; downstream partitioners expect
        # ordinary writable arrays.
        yield arr.copy()
