"""Tests for the point-operation backends."""

import numpy as np
import pytest

from repro.geometry import farthest_point_sample, neighbor_recall
from repro.networks import BlockBackend, ExactBackend, make_backend
from repro.partition import FractalPartitioner


class TestExactBackend:
    def test_sample_is_reference_fps(self, gaussian_cloud):
        backend = ExactBackend()
        assert np.array_equal(
            backend.sample(gaussian_cloud, 50),
            farthest_point_sample(gaussian_cloud, 50),
        )

    def test_group_returns_global_indices(self, gaussian_cloud):
        backend = ExactBackend()
        centers = backend.sample(gaussian_cloud, 20)
        nbrs = backend.group(gaussian_cloud, centers, 0.5, 8)
        assert nbrs.shape == (20, 8)
        assert nbrs.max() < len(gaussian_cloud)

    def test_interpolate_weights_simplex(self, gaussian_cloud, rng):
        backend = ExactBackend()
        cands = rng.choice(len(gaussian_cloud), size=100, replace=False)
        idx, w = backend.interpolate_indices(gaussian_cloud, np.arange(50), cands)
        assert np.allclose(w.sum(axis=1), 1.0)
        assert set(idx.ravel().tolist()) <= set(cands.tolist())


class TestBlockBackend:
    def test_partition_cache_reused(self, gaussian_cloud):
        backend = BlockBackend(FractalPartitioner(threshold=64))
        backend.sample(gaussian_cloud, 50)
        backend.group(gaussian_cloud, np.arange(10), 0.5, 4)
        assert len(backend._cache) == 1  # same coords → one partition

    def test_cache_eviction(self, rng):
        backend = BlockBackend(FractalPartitioner(threshold=32), cache_size=2)
        for _ in range(4):
            backend.sample(rng.normal(size=(200, 3)), 10)
        assert len(backend._cache) <= 2

    def test_sample_count_exact(self, gaussian_cloud):
        backend = make_backend("fractal", max_points_per_block=64)
        idx = backend.sample(gaussian_cloud, 123)
        assert len(idx) == 123
        assert len(set(idx.tolist())) == 123

    def test_block_group_recall_reasonable(self, scene_coords):
        exact = ExactBackend()
        block = make_backend("fractal", max_points_per_block=256)
        centers = exact.sample(scene_coords, 256)
        e = exact.group(scene_coords, centers, 0.2, 16)
        b = block.group(scene_coords, centers, 0.2, 16)
        assert neighbor_recall(b, e) > 0.7

    def test_uniform_sampling_distorts_more_than_fractal(self, scene_coords):
        """The accuracy-ordering mechanism of Fig. 14: block-wise FPS over
        imbalanced space-uniform cells covers the scene far worse than
        over fractal blocks (density-aligned quotas)."""
        from repro.geometry import coverage_radius

        exact = ExactBackend()
        n_s = len(scene_coords) // 4
        exact_cov = coverage_radius(scene_coords, exact.sample(scene_coords, n_s))
        ratios = {}
        for name in ["fractal", "uniform"]:
            backend = make_backend(name, max_points_per_block=256)
            idx = backend.sample(scene_coords, n_s)
            ratios[name] = coverage_radius(scene_coords, idx) / exact_cov
        assert ratios["fractal"] < 2.0
        assert ratios["uniform"] > 1.5 * ratios["fractal"]

    def test_session_memoises_per_structure_state(self, gaussian_cloud):
        """MSG regression: grouping the same centres over the same cloud
        (once per scale) used to re-bincount the centre owners and
        re-normalise the coordinates on every call."""
        backend = BlockBackend(FractalPartitioner(threshold=64))
        centers = np.arange(20)
        backend.group(gaussian_cloud, centers, 0.3, 4)
        backend.group(gaussian_cloud, centers, 0.6, 8)  # second scale
        session = backend._session(gaussian_cloud)
        assert len(backend._sessions) == 1  # one structure, one session
        counts = session.measured_counts(centers)
        assert counts is session.measured_counts(centers)  # memo hit
        # A different centre array gets its own entry (identity-keyed).
        other = np.arange(10)
        assert session.measured_counts(other) is not counts
        # Normalised coords memoise per input array too.
        backend.interpolate_indices(gaussian_cloud, np.arange(5), centers)
        assert session.coords64(gaussian_cloud) is session.coords64(
            gaussian_cloud
        )

    def test_shared_cache_is_used_and_warmed(self, gaussian_cloud):
        """The engine hands its PartitionCache to model backends: the
        backend must partition through it, not through a private one."""
        from repro.runtime.cache import PartitionCache

        partitioner = FractalPartitioner(threshold=64)
        shared = PartitionCache(partitioner, maxsize=4)
        backend = BlockBackend(partitioner, cache=shared)
        backend.sample(gaussian_cloud, 30)
        assert len(shared) == 1  # warmed the caller's cache
        structure, hit = shared.get(gaussian_cloud)
        assert hit
        assert backend._structure(gaussian_cloud) is structure

    def test_make_backend_names(self):
        assert make_backend("exact").name == "exact"
        assert make_backend("fractal").name == "fractal"
        with pytest.raises(ValueError):
            make_backend("quadtree")
