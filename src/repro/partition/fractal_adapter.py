"""Adapter exposing :func:`repro.core.fractal.fractal_partition` as a
:class:`~repro.partition.base.Partitioner`, so the paper's method competes
with the baselines through one interface.
"""

from __future__ import annotations

import numpy as np

from ..core.blocks import BlockStructure
from ..core.config import FractalConfig
from ..core.delta import FractalCertificate, attach_certificate
from ..core.fractal import fractal_partition
from .base import Partitioner

__all__ = ["FractalPartitioner"]


class FractalPartitioner(Partitioner):
    """Fractal shape-aware partitioning under the common interface.

    Args:
        threshold: maximum points per block (``th``).
        config: full :class:`FractalConfig` override (wins over
            ``threshold`` when provided).
    """

    name = "fractal"
    supports_fused_build = True

    def __init__(self, threshold: int = 256, config: FractalConfig | None = None):
        self.config = config or FractalConfig(threshold=threshold)

    def partition(self, coords: np.ndarray, on_leaf=None) -> BlockStructure:
        tree = fractal_partition(coords, self.config, on_leaf=on_leaf)
        structure = tree.block_structure()
        attach_certificate(structure, FractalCertificate.from_tree(tree, self.config))
        return structure
