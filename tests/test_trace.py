"""Tests for the simulator's execution-trace mode."""

import pytest

from repro.hw import AcceleratorSim, FRACTALCLOUD, POINTACC
from repro.networks import get_workload


@pytest.fixture(scope="module")
def traced():
    return AcceleratorSim(FRACTALCLOUD).run(get_workload("PN++(s)"), 4096, trace=True)


class TestTrace:
    def test_disabled_by_default(self):
        r = AcceleratorSim(POINTACC).run(get_workload("PN++(c)"), 1024)
        assert r.trace == []
        assert "no trace" in r.timeline()

    def test_events_sum_to_latency(self, traced):
        assert sum(e.seconds for e in traced.trace) == pytest.approx(traced.latency_s)

    def test_events_are_sequential(self, traced):
        for prev, nxt in zip(traced.trace, traced.trace[1:]):
            assert nxt.start_s == pytest.approx(prev.end_s)

    def test_stage_indices_monotone(self, traced):
        indices = [e.stage_index for e in traced.trace]
        assert indices == sorted(indices)
        assert indices[0] == -1  # weight-load setup event

    def test_phases_match_run_phases(self, traced):
        trace_phases = {e.phase for e in traced.trace}
        assert trace_phases == set(traced.phases)

    def test_dram_bytes_consistent(self, traced):
        assert sum(e.dram_bytes for e in traced.trace) == pytest.approx(
            traced.dram_bytes
        )

    def test_timeline_renders(self, traced):
        text = traced.timeline()
        assert "stage  0" in text
        assert "mlp" in text

    def test_trace_does_not_change_results(self):
        sim = AcceleratorSim(FRACTALCLOUD)
        spec = get_workload("PN++(s)")
        plain = sim.run(spec, 4096)
        traced = sim.run(spec, 4096, trace=True)
        assert plain.latency_s == pytest.approx(traced.latency_s)
        assert plain.energy_j == pytest.approx(traced.energy_j)
