"""Pluggable rule registry for the project-invariant linter.

A rule is a named, documented check with a stable id (``REPnnn``).  The
rule modules in this package register themselves at import time through
the :func:`rule` decorator; downstream extensions (a deployment repo
pinning extra invariants, a test corpus) can call :func:`register` with
their own :class:`Rule` instances — ids must be unique, collisions are a
hard error so two plugins can never silently shadow each other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

__all__ = ["Rule", "RULES", "register", "rule"]


@dataclass(frozen=True)
class Rule:
    """One named invariant check.

    ``check(ctx)`` receives a
    :class:`~repro.analysis.lint.engine.ModuleContext` and yields
    ``(line, col, message)`` triples for every violation it sees.
    """

    id: str
    name: str
    summary: str
    check: Callable[[object], Iterable[tuple[int, int, str]]]


#: id -> rule, in registration order (rule modules import in id order).
RULES: dict[str, Rule] = {}


def register(new: Rule) -> Rule:
    """Add a rule to the registry; duplicate ids are a hard error."""
    if new.id in RULES:
        raise ValueError(f"rule id {new.id!r} already registered")
    RULES[new.id] = new
    return new


def rule(rule_id: str, name: str, summary: str):
    """Decorator form of :func:`register` for plain check functions."""

    def decorate(fn):
        register(Rule(rule_id, name, summary, fn))
        return fn

    return decorate
