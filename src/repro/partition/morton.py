"""Morton-order (Z-curve) partitioning — an extra linear-time baseline.

Space-filling-curve bucketing is the other hardware-friendly partitioning
family used in practice (GPU BVH builders, point-cloud compaction): sort
points by their interleaved-bit Morton code and cut the sorted order into
equal-size blocks.  Like the KD-tree it yields perfectly balanced blocks;
like the uniform grid it needs no recursion — but it pays one *global
sort* (the very operation Fractal eliminates), and curve-order neighbours
are only *mostly* spatial neighbours (Z-curve locality has jumps), so its
search spaces lose some geometric coherence.

Included as an extension baseline beyond the paper's four strategies; the
cost counters model the single exclusive sort so the fractal engine can
price it.
"""

from __future__ import annotations

import numpy as np

from ..core.blocks import Block, BlockStructure, PartitionCost
from .base import Partitioner

__all__ = ["MortonPartitioner", "morton_codes"]

_BITS = 21  # 3 x 21 = 63 bits: fits int64


def _spread_bits(values: np.ndarray) -> np.ndarray:
    """Insert two zero bits between every bit of 21-bit integers."""
    v = values.astype(np.uint64)
    v = (v | (v << np.uint64(32))) & np.uint64(0x1F00000000FFFF)
    v = (v | (v << np.uint64(16))) & np.uint64(0x1F0000FF0000FF)
    v = (v | (v << np.uint64(8))) & np.uint64(0x100F00F00F00F00F)
    v = (v | (v << np.uint64(4))) & np.uint64(0x10C30C30C30C30C3)
    v = (v | (v << np.uint64(2))) & np.uint64(0x1249249249249249)
    return v


def morton_codes(coords: np.ndarray) -> np.ndarray:
    """64-bit Morton codes of ``(n, 3)`` points (box-normalised)."""
    coords = np.asarray(coords, dtype=np.float64)
    lo = coords.min(axis=0)
    extent = coords.max(axis=0) - lo
    extent[extent == 0] = 1.0
    grid = ((coords - lo) / extent * (2**_BITS - 1)).astype(np.uint64)
    return (
        _spread_bits(grid[:, 0]) << np.uint64(2)
        | _spread_bits(grid[:, 1]) << np.uint64(1)
        | _spread_bits(grid[:, 2])
    )


class MortonPartitioner(Partitioner):
    """Equal-size blocks along the Z-order curve.

    Args:
        block_size: points per block (last block may be smaller).
        neighbor_expansion: include the preceding and following curve
            blocks in each block's search space (the curve analogue of
            the parent rule; default True).
    """

    name = "morton"

    def __init__(self, block_size: int = 256, neighbor_expansion: bool = True):
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        self.block_size = block_size
        self.neighbor_expansion = neighbor_expansion

    def partition(self, coords: np.ndarray) -> BlockStructure:
        n = len(coords)
        if n == 0:
            raise ValueError("cannot partition an empty point cloud")
        codes = morton_codes(coords)
        order = np.argsort(codes, kind="stable")
        num_blocks = max(1, int(np.ceil(n / self.block_size)))
        chunks = np.array_split(order, num_blocks)
        blocks = [Block(np.sort(c).astype(np.int64), depth=1) for c in chunks]
        spaces = []
        for i, chunk in enumerate(chunks):
            if self.neighbor_expansion:
                parts = [chunks[j] for j in (i - 1, i, i + 1) if 0 <= j < len(chunks)]
                spaces.append(np.sort(np.concatenate(parts)).astype(np.int64))
            else:
                spaces.append(blocks[i].indices)
        # One global exclusive sort of all n points.
        cost = PartitionCost(sorts=[n], passes=[n], levels=1)
        return BlockStructure(
            num_points=n, blocks=blocks, search_spaces=spaces,
            cost=cost, strategy=self.name,
        )
