"""Numpy neural-network layers with manual backpropagation.

Just enough machinery to train the small PNN backbones used by the
accuracy experiments: dense layers, ReLU, shared (pointwise) MLPs,
neighbourhood max pooling, softmax cross-entropy, and Adam.  Every layer
follows the same contract — ``forward`` caches what ``backward`` needs,
``backward`` accumulates parameter gradients and returns the input
gradient — and gradients are verified against finite differences in
``tests/test_layers.py``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "Parameter",
    "Module",
    "Dense",
    "ReLU",
    "SharedMLP",
    "max_pool",
    "max_pool_backward",
    "softmax_cross_entropy",
    "Adam",
]


class Parameter:
    """A trainable tensor with its gradient accumulator."""

    def __init__(self, value: np.ndarray):
        self.value = np.asarray(value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)

    @property
    def shape(self) -> tuple[int, ...]:
        return self.value.shape


class Module:
    """Base class: parameter collection + gradient reset."""

    def parameters(self) -> list[Parameter]:
        params: list[Parameter] = []
        for attr in vars(self).values():
            if isinstance(attr, Parameter):
                params.append(attr)
            elif isinstance(attr, Module):
                params.extend(attr.parameters())
            elif isinstance(attr, (list, tuple)):
                for item in attr:
                    if isinstance(item, Module):
                        params.extend(item.parameters())
                    elif isinstance(item, Parameter):
                        params.append(item)
        return params

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.grad[...] = 0.0


class Dense(Module):
    """Affine layer ``y = x @ W + b`` over the last axis.

    Accepts arbitrary leading dimensions, so the same layer implements
    both per-point (shared/1x1-conv) and fully-connected computation.

    Row-stability contract: every output row is a function of its input
    row alone, bit-identical no matter how rows are batched.  The fused
    serving path relies on it — the same point may be evaluated inside a
    ``(n, c)`` delayed-aggregation pass, an eager ``(m, k, c)`` gathered
    pass, or a one-row offline head call, and all three must agree to
    the last bit.  Two measures enforce it: inputs are flattened to one
    2-D GEMM (BLAS computes each row of a 2-D product independently at
    these widths, but a stack of small 3-D matmuls may not batch the
    same way), and single-row inputs are padded to two rows (one-row
    products take BLAS's gemv path, whose accumulation order differs
    from the gemm used for taller inputs).
    """

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator):
        scale = np.sqrt(2.0 / in_features)  # He init (ReLU nets)
        self.weight = Parameter(rng.normal(scale=scale, size=(in_features, out_features)))
        # Small positive bias keeps ReLUs alive even for degenerate
        # all-zero groups (a centre whose ball query found only itself).
        self.bias = Parameter(np.full(out_features, 0.01))
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        in_f, out_f = self.weight.shape
        x2 = x.reshape(-1, in_f)
        if len(x2) == 1:
            y2 = (np.concatenate([x2, x2]) @ self.weight.value)[:1]
        else:
            y2 = x2 @ self.weight.value
        return (y2 + self.bias.value).reshape(x.shape[:-1] + (out_f,))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        x = self._x
        if x is None:
            raise RuntimeError("backward called before forward")
        in_f, out_f = self.weight.shape
        x2 = x.reshape(-1, in_f)
        g2 = grad.reshape(-1, out_f)
        self.weight.grad += x2.T @ g2
        self.bias.grad += g2.sum(axis=0)
        return grad @ self.weight.value.T


class ReLU(Module):
    """Elementwise rectifier."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return np.where(self._mask, grad, 0.0)


class SharedMLP(Module):
    """Stack of Dense+ReLU applied pointwise (the PNN "MLP" block).

    Args:
        widths: channel sizes ``[c_in, c_1, ..., c_out]``.
        rng: initialiser RNG.
        final_relu: apply ReLU after the last layer too (True inside
            set-abstraction blocks, False for logits heads).
    """

    def __init__(self, widths: list[int], rng: np.random.Generator, final_relu: bool = True):
        if len(widths) < 2:
            raise ValueError("SharedMLP needs at least [c_in, c_out]")
        self.layers: list[Module] = []
        for i in range(len(widths) - 1):
            self.layers.append(Dense(widths[i], widths[i + 1], rng))
            if i < len(widths) - 2 or final_relu:
                self.layers.append(ReLU())
        self.widths = list(widths)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad


def max_pool(x: np.ndarray, axis: int = 1) -> tuple[np.ndarray, np.ndarray]:
    """Max over ``axis``; returns ``(pooled, argmax)`` for the backward pass."""
    arg = np.argmax(x, axis=axis)
    pooled = np.take_along_axis(x, np.expand_dims(arg, axis), axis=axis).squeeze(axis)
    return pooled, arg


def max_pool_backward(
    grad: np.ndarray, arg: np.ndarray, input_shape: tuple[int, ...], axis: int = 1
) -> np.ndarray:
    """Scatter pooled gradients back to the argmax positions."""
    out = np.zeros(input_shape, dtype=grad.dtype)
    np.put_along_axis(
        out, np.expand_dims(arg, axis), np.expand_dims(grad, axis), axis=axis
    )
    return out


def softmax_cross_entropy(
    logits: np.ndarray, labels: np.ndarray
) -> tuple[float, np.ndarray, np.ndarray]:
    """Mean cross-entropy over rows.

    Returns:
        ``(loss, grad, probs)`` where ``grad`` is d(loss)/d(logits).
    """
    labels = np.asarray(labels)
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    probs = exp / exp.sum(axis=1, keepdims=True)
    n = len(labels)
    eps = 1e-12
    loss = float(-np.log(probs[np.arange(n), labels] + eps).mean())
    grad = probs.copy()
    grad[np.arange(n), labels] -= 1.0
    grad /= n
    return loss, grad, probs


class Adam:
    """Standard Adam over a parameter list."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
    ):
        self.params = params
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._m = [np.zeros_like(p.value) for p in params]
        self._v = [np.zeros_like(p.value) for p in params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        for p, m, v in zip(self.params, self._m, self._v):
            m[...] = b1 * m + (1 - b1) * p.grad
            v[...] = b2 * v + (1 - b2) * p.grad**2
            m_hat = m / (1 - b1**self._t)
            v_hat = v / (1 - b2**self._t)
            p.value -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad[...] = 0.0
