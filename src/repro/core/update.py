"""Incremental Fractal updates for dynamic point clouds (paper §VI-D).

The paper's adaptation discussion points at dynamic data ("exploit
spatial locality in dynamic graphs to accelerate their construction and
updates").  Streaming sensors (LiDAR at 10-20 Hz) change only part of the
scene between frames, so rebuilding the fractal tree from scratch wastes
the partitioning work the previous frame already paid for.

:class:`FractalUpdater` maintains a fractal partition under insertions
and removals:

- **insert** routes each new point down the existing split planes
  (O(depth) comparisons — exactly what the partition-unit comparators do)
  and splits any leaf that overflows the threshold *locally*;
- **remove** deletes points from their leaves and merges sibling leaves
  whose combined population falls under a hysteresis bound (th/2),
  keeping the tree from accumulating fragmentation;
- cost counters compare the points touched against a full rebuild, which
  is the quantity the hardware saves.

The resulting partition satisfies the same invariants as a fresh
:func:`~repro.core.fractal.fractal_partition` (disjoint cover, leaf
bound, parent search spaces) — tested in ``tests/test_update.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from .blocks import Block, BlockStructure, PartitionCost
from .config import FractalConfig
from .fractal import fractal_partition

__all__ = ["FractalUpdater", "UpdateStats"]


@dataclass
class _Node:
    """Routing node: split plane for internal nodes, members for leaves."""

    depth: int
    dim: int = -1
    mid: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None
    members: Optional[set[int]] = None  # leaves only
    parent: Optional["_Node"] = field(default=None, repr=False)

    @property
    def is_leaf(self) -> bool:
        return self.members is not None


@dataclass
class UpdateStats:
    """Work counters for the rebuild-vs-update comparison."""

    points_routed: int = 0
    comparisons: int = 0
    leaf_splits: int = 0
    leaf_merges: int = 0
    points_resplit: int = 0

    @property
    def update_work(self) -> int:
        """Points touched by incremental maintenance."""
        return self.points_routed + self.points_resplit


class FractalUpdater:
    """A fractal partition that tracks a mutable point set.

    Args:
        coords: initial ``(n, 3)`` coordinates.
        config: Fractal parameters (threshold, split rule).

    Point identity: every point ever inserted has a stable integer id;
    removed ids are never reused.  :meth:`structure` exports the live
    partition over the live ids, plus an id→row map for user arrays.
    """

    def __init__(self, coords: np.ndarray, config: FractalConfig | None = None):
        self.config = config or FractalConfig()
        coords = np.asarray(coords, dtype=np.float64)
        if coords.ndim != 2 or coords.shape[1] != 3:
            raise ValueError(f"coords must be (n, 3), got {coords.shape}")
        self._coords = coords.copy()
        self._alive = np.ones(len(coords), dtype=bool)
        self.stats = UpdateStats()
        self._root = self._build(np.arange(len(coords), dtype=np.int64))

    # ------------------------------------------------------------- building
    def _build(self, indices: np.ndarray, depth: int = 0) -> _Node:
        """Build a routing subtree over ``indices`` with a fresh Fractal run."""
        if len(indices) == 0:
            return _Node(depth=depth, members=set())
        tree = fractal_partition(self._coords[indices], self.config)
        return self._convert(tree.root, indices, depth)

    def _convert(self, node, indices: np.ndarray, depth: int) -> _Node:
        if node.is_leaf:
            return _Node(depth=depth, members=set(indices[node.indices].tolist()))
        out = _Node(depth=depth, dim=node.split_dim, mid=node.split_mid)
        out.left = self._convert(node.left, indices, depth + 1)
        out.right = self._convert(node.right, indices, depth + 1)
        out.left.parent = out
        out.right.parent = out
        return out

    # ------------------------------------------------------------ mutation
    @property
    def num_points(self) -> int:
        return int(self._alive.sum())

    def insert(self, new_coords: np.ndarray) -> np.ndarray:
        """Insert points; returns their stable ids.

        The whole batch is routed in one vectorized descent
        (:meth:`_route_groups`) and lands per leaf with one bulk set
        update; leaves that overflow the threshold split once, after the
        batch — the local rebuild re-enforces the leaf bound recursively,
        so the partition invariants match per-point insertion.
        """
        new_coords = np.asarray(new_coords, dtype=np.float64).reshape(-1, 3)
        start = len(self._coords)
        ids = np.arange(start, start + len(new_coords), dtype=np.int64)
        self._coords = np.concatenate([self._coords, new_coords])
        self._alive = np.concatenate([self._alive, np.ones(len(new_coords), dtype=bool)])
        self.stats.points_routed += len(ids)
        touched = self._route_groups(new_coords)
        for leaf, rows in touched:
            leaf.members.update(ids[rows].tolist())
        for leaf, _ in touched:
            if leaf.is_leaf and len(leaf.members) > self.config.threshold:
                self._split_leaf(leaf)
        return ids

    def remove(self, ids: np.ndarray) -> None:
        """Remove points by id; merges underfilled sibling leaves.

        Ids are validated up front (any dead, duplicate, or out-of-range
        id raises before the partition is touched), the batch is routed
        in one vectorized descent, and each touched leaf pays one bulk
        ``difference_update``.  Merge maintenance runs after all
        removals: a cascade can absorb another touched leaf into its
        parent, so each leaf is merged only while still :meth:`_live`.
        """
        ids = np.asarray(ids, dtype=np.int64).reshape(-1)
        bad = (ids < 0) | (ids >= len(self._alive))
        if bad.any() or not self._alive[ids].all():
            first = int(ids[bad][0]) if bad.any() else int(
                ids[~self._alive[ids]][0]
            )
            raise KeyError(f"point id {first} is not alive")
        if len(np.unique(ids)) != len(ids):
            unique, counts = np.unique(ids, return_counts=True)
            raise KeyError(
                f"point id {int(unique[counts > 1][0])} is not alive "
                "(repeated in one remove batch)"
            )
        touched = self._route_groups(self._coords[ids])
        self._alive[ids] = False
        for leaf, rows in touched:
            leaf.members.difference_update(ids[rows].tolist())
        for leaf, _ in touched:
            if leaf.is_leaf and self._live(leaf):
                self._maybe_merge(leaf)

    def move(self, ids: np.ndarray, new_coords: np.ndarray) -> int:
        """Move live points to new coordinates; returns the re-home count.

        The common streaming case — sensor jitter — leaves most points
        inside their leaf's half-spaces, so the routing is done for the
        whole batch at once (one vectorized descent with the old and the
        new coordinates) and only the *crossers* pay bookkeeping — one
        bulk membership update per source and destination leaf, with the
        usual split/merge maintenance afterwards.
        """
        ids = np.asarray(ids, dtype=np.int64)
        new_coords = np.asarray(new_coords, dtype=np.float64).reshape(-1, 3)
        if len(ids) != len(new_coords):
            raise ValueError("ids and new_coords must have equal length")
        if len(ids) == 0:
            return 0
        if np.any(ids < 0) or np.any(ids >= len(self._alive)) or not np.all(
            self._alive[ids]
        ):
            raise KeyError("move() requires live point ids")
        src_groups = self._route_groups(self._coords[ids])
        self._coords[ids] = new_coords
        dst_groups = self._route_groups(new_coords)
        self.stats.points_routed += len(ids)
        # Leaf-identity labels per point: crossers are the rows whose
        # source and destination labels differ — one array compare
        # instead of a per-point identity loop.
        labels: dict[int, int] = {}
        src_label = np.empty(len(ids), dtype=np.int64)
        dst_label = np.empty(len(ids), dtype=np.int64)
        for groups, label_arr in ((src_groups, src_label), (dst_groups, dst_label)):
            for leaf, rows in groups:
                label_arr[rows] = labels.setdefault(id(leaf), len(labels))
        crossing = src_label != dst_label
        crossed = int(crossing.sum())
        if not crossed:
            return 0
        for leaf, rows in src_groups:
            moved_out = rows[crossing[rows]]
            if len(moved_out):
                leaf.members.difference_update(ids[moved_out].tolist())
        for leaf, rows in dst_groups:
            moved_in = rows[crossing[rows]]
            if len(moved_in):
                leaf.members.update(ids[moved_in].tolist())
        for leaf, rows in dst_groups:
            if (
                crossing[rows].any()
                and leaf.is_leaf
                and len(leaf.members) > self.config.threshold
            ):
                self._split_leaf(leaf)
        for leaf, rows in src_groups:
            if crossing[rows].any() and leaf.is_leaf and self._live(leaf):
                self._maybe_merge(leaf)
        return crossed

    def _route(self, point: np.ndarray) -> _Node:
        node = self._root
        while not node.is_leaf:
            self.stats.comparisons += 1
            node = node.left if point[node.dim] <= node.mid else node.right
        return node

    def _route_groups(self, pts: np.ndarray) -> list[tuple[_Node, np.ndarray]]:
        """``(leaf, rows)`` batches of ``pts`` via one vectorized descent.

        One searchsorted-style sweep per tree level: every node visit
        partitions its row set with a single vectorized comparison, so
        the per-point Python cost of routing a batch is O(leaves
        touched), not O(points).  Each returned leaf appears exactly
        once.
        """
        groups: list[tuple[_Node, np.ndarray]] = []
        stack: list[tuple[_Node, np.ndarray]] = [
            (self._root, np.arange(len(pts), dtype=np.int64))
        ]
        while stack:
            node, rows = stack.pop()
            if node.is_leaf:
                groups.append((node, rows))
                continue
            self.stats.comparisons += len(rows)
            go_left = pts[rows, node.dim] <= node.mid
            left_rows = rows[go_left]
            right_rows = rows[~go_left]
            if len(left_rows):
                stack.append((node.left, left_rows))
            if len(right_rows):
                stack.append((node.right, right_rows))
        return groups

    def _route_many(self, pts: np.ndarray) -> list[_Node]:
        """Leaf of each row of ``pts`` (kept for per-point consumers)."""
        out: list[Optional[_Node]] = [None] * len(pts)
        for leaf, rows in self._route_groups(pts):
            for r in rows.tolist():
                out[r] = leaf
        return out

    @staticmethod
    def _live(leaf: _Node) -> bool:
        """Whether ``leaf`` is still referenced by the routing tree.

        Batch maintenance defers merges until after every membership
        update; a merge cascade can absorb a sibling that is *also* on
        the touched list, leaving a detached node object behind.  A node
        is live iff its parent still points at it (the root always is) —
        the parent itself cannot have been merged away while it has an
        attached child, so one hop suffices.
        """
        parent = leaf.parent
        return parent is None or parent.left is leaf or parent.right is leaf

    def _split_leaf(self, leaf: _Node) -> None:
        members = np.array(sorted(leaf.members), dtype=np.int64)
        subtree = self._build(members, depth=leaf.depth)
        self.stats.leaf_splits += 1
        self.stats.points_resplit += len(members)
        if subtree.is_leaf:
            # Degenerate (coincident points): keep as an oversized leaf.
            leaf.members = subtree.members
            return
        leaf.members = None
        leaf.dim, leaf.mid = subtree.dim, subtree.mid
        leaf.left, leaf.right = subtree.left, subtree.right
        leaf.left.parent = leaf
        leaf.right.parent = leaf

    def _maybe_merge(self, leaf: _Node) -> None:
        parent = leaf.parent
        if parent is None:
            return
        sibling = parent.right if parent.left is leaf else parent.left
        if not sibling.is_leaf:
            return
        combined = len(leaf.members) + len(sibling.members)
        if combined > self.config.threshold // 2:
            return
        parent.members = leaf.members | sibling.members
        parent.dim, parent.mid = -1, 0.0
        parent.left = parent.right = None
        self.stats.leaf_merges += 1
        self._maybe_merge(parent)  # cascades up while underfilled

    # -------------------------------------------------------------- export
    def _collect(self, leaves: list[_Node], intervals: dict[int, tuple[int, int]]) -> None:
        """DFS over the tree, listing populated leaves in tour order.

        ``intervals[id(node)]`` becomes the half-open range of positions
        in ``leaves`` covered by the node's subtree — the Euler-tour view
        that lets :meth:`structure` assemble any subtree's member set by
        concatenating one contiguous run of leaf arrays, instead of the
        per-node Python set unions this method used to build.
        """
        stack: list[tuple[_Node, bool]] = [(self._root, False)]
        starts: list[tuple[int, int]] = []
        while stack:
            node, done = stack.pop()
            if done:
                key, lo = starts.pop()
                intervals[key] = (lo, len(leaves))
                continue
            if node.is_leaf:
                if node.members:
                    intervals[id(node)] = (len(leaves), len(leaves) + 1)
                    leaves.append(node)
                else:
                    intervals[id(node)] = (len(leaves), len(leaves))
                continue
            starts.append((id(node), len(leaves)))
            stack.append((node, True))
            stack.append((node.right, False))
            stack.append((node.left, False))

    def structure(self) -> tuple[BlockStructure, np.ndarray]:
        """Export the live partition.

        Returns:
            ``(structure, live_ids)`` — a :class:`BlockStructure` whose
            indices are *rows into* ``coords()`` (0..n_live-1), and the
            stable ids of those rows in order.

        One vectorised pass: leaves land in tour order with a per-leaf
        id array, an id→row lookup table replaces per-leaf searches, and
        every parent search space is one contiguous slice of the
        concatenated leaf ids (shared across that parent's leaves).
        """
        leaves: list[_Node] = []
        intervals: dict[int, tuple[int, int]] = {}
        self._collect(leaves, intervals)
        member_arrays = [
            np.sort(np.fromiter(leaf.members, dtype=np.int64,
                                count=len(leaf.members)))
            for leaf in leaves
        ]
        cat_ids = (
            np.concatenate(member_arrays)
            if member_arrays else np.empty(0, dtype=np.int64)
        )
        offsets = np.zeros(len(leaves) + 1, dtype=np.int64)
        if leaves:
            np.cumsum([len(m) for m in member_arrays], out=offsets[1:])
        live_ids = np.sort(cat_ids)
        # Leaves partition the live ids: a dense id→row table makes every
        # row lookup one gather (a sorted id subset maps to sorted rows).
        lookup = np.empty(max(len(self._alive), 1), dtype=np.int64)
        lookup[live_ids] = np.arange(len(live_ids), dtype=np.int64)
        blocks, spaces = [], []
        parent_rows: dict[int, np.ndarray] = {}
        for pos, (leaf, members) in enumerate(zip(leaves, member_arrays)):
            rows = lookup[members]
            blocks.append(Block(rows, depth=leaf.depth))
            if leaf.depth <= 1 or leaf.parent is None:
                spaces.append(rows)
                continue
            key = id(leaf.parent)
            space = parent_rows.get(key)
            if space is None:
                lo, hi = intervals[key]
                space = np.sort(lookup[cat_ids[offsets[lo]: offsets[hi]]])
                parent_rows[key] = space
            spaces.append(space)
        structure = BlockStructure(
            num_points=len(live_ids),
            blocks=blocks,
            search_spaces=spaces,
            cost=PartitionCost(),
            strategy="fractal",
        )
        return structure, live_ids

    def coords(self) -> np.ndarray:
        """Coordinates of live points, aligned with ``structure()`` rows."""
        return self._coords[self._alive]

    def rebuild_work(self) -> int:
        """Points a from-scratch Fractal rebuild would traverse."""
        tree = fractal_partition(self.coords(), self.config)
        return tree.cost.total_traversed_elements
