"""Streaming LiDAR: incremental Fractal maintenance + dynamic KNN graphs.

A 10 Hz-style sensor stream where ~10 % of the cloud churns per frame.
Instead of re-partitioning every frame, the :class:`FractalUpdater`
routes new points down the existing split planes and repairs only the
blocks that overflow or underfill — then the maintained partition powers
both block-wise FPS and DGCNN-style block-local graph construction
(the paper's §VI-D adaptations).

The frames are then replayed through the batched
:class:`~repro.runtime.executor.BatchExecutor` — the serving-side engine
that overlaps whole frames across a worker pool and deduplicates repeated
frames through its content-hash partition cache.

Run:  python examples/streaming_lidar.py
"""

import numpy as np

from repro.analysis import format_table
from repro.core import (
    FractalConfig,
    block_knn_graph,
    dispatch,
    edge_recall,
    exact_knn_graph,
)
from repro.core.update import FractalUpdater
from repro.datasets import lidar_scan
from repro.runtime import BatchExecutor, PipelineSpec

N_POINTS = 8_192
FRAMES = 5
CHURN = 0.1


def main() -> None:
    frame0 = lidar_scan(N_POINTS, seed=0)
    updater = FractalUpdater(frame0.coords.astype(np.float64),
                             FractalConfig(threshold=256))
    rng = np.random.default_rng(42)
    rows = []
    for frame in range(1, FRAMES + 1):
        _, live = updater.structure()
        churn = int(updater.num_points * CHURN)
        work_before = updater.stats.update_work

        # Sensor churn: old returns fall off, new returns arrive (scene
        # drifts along +x as the vehicle moves).
        updater.remove(rng.choice(live, size=churn, replace=False))
        fresh = lidar_scan(churn, seed=frame).coords.astype(np.float64)
        fresh[:, 0] += 0.8 * frame
        updater.insert(fresh)

        structure, _ = updater.structure()
        coords = updater.coords()
        n_samples = len(coords) // 4
        sampled, _ = dispatch.run_op(
            "fps", structure, coords, n_samples, num_centers=n_samples
        )

        rows.append([
            frame,
            structure.num_blocks,
            int(structure.max_block_size),
            updater.stats.update_work - work_before,
            updater.stats.leaf_splits,
            updater.stats.leaf_merges,
            len(sampled),
        ])
    print(format_table(
        ["frame", "blocks", "max block", "update work",
         "splits (cum)", "merges (cum)", "samples"],
        rows,
        title=f"streaming maintenance: {N_POINTS} pts, {int(CHURN*100)}% churn/frame "
              f"(full rebuild would traverse ~{updater.rebuild_work():,} points/frame)",
    ))

    # Streaming the same sensor through the batched execution engine:
    # frames arrive as a generator, the engine pulls them with
    # backpressure, overlaps them across workers, and a stalled scene
    # (identical frame re-sent) is deduplicated — computed once,
    # replayed for every repeat.
    def frames():
        for f in range(2 * FRAMES):
            yield lidar_scan(N_POINTS // 2, seed=f % FRAMES).coords
    pipeline = PipelineSpec(sample_ratio=0.25, radius=0.3, group_size=16,
                            with_interpolation=False)
    with BatchExecutor("fractal", block_size=256, max_workers=4) as engine:
        report = engine.run(frames(), pipeline)
    stats = report.stats
    print(f"\nbatched engine over the stream: {stats.clouds} frames at "
          f"{stats.clouds_per_second:.1f} frames/s "
          f"({stats.points_per_second / 1e6:.2f}M points/s), "
          f"{stats.reused} repeated frames deduplicated, "
          f"{stats.speedup_over_busy:.2f}x worker overlap")

    # Dynamic graph on the final frame (DGCNN adaptation).
    structure, _ = updater.structure()
    coords = updater.coords()
    subset = np.sort(np.random.default_rng(0).choice(len(coords), 2048, replace=False))
    sub_coords = coords[subset]
    from repro.core import fractal_partition
    sub_structure = fractal_partition(sub_coords, FractalConfig(threshold=128)).block_structure()
    exact = exact_knn_graph(sub_coords, 8)
    approx, work = block_knn_graph(sub_structure, sub_coords, 8)
    print(f"\ndynamic KNN graph on 2,048-point crop: "
          f"{edge_recall(approx, exact):.1%} edge recall at "
          f"{2048 * 2048 / work:.1f}x fewer distance computations")


if __name__ == "__main__":
    main()
