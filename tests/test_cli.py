"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_partition_defaults(self):
        args = build_parser().parse_args(["partition"])
        assert args.dataset == "s3dis"
        assert args.block_size == 256

    def test_simulate_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--accelerator", "TPU"])


class TestCommands:
    def test_partition_command(self, capsys):
        rc = main(["partition", "--dataset", "modelnet40", "--points", "1024",
                   "--block-size", "64", "--strategy", "fractal,uniform"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fractal" in out and "uniform" in out
        assert "1,024 points" in out

    def test_partition_from_npy(self, capsys, tmp_path):
        coords = np.random.default_rng(0).normal(size=(500, 3))
        path = tmp_path / "cloud.npy"
        np.save(path, coords)
        rc = main(["partition", "--input", str(path), "--strategy", "fractal",
                   "--block-size", "64"])
        assert rc == 0
        assert "500 points" in capsys.readouterr().out

    def test_simulate_accelerator(self, capsys):
        rc = main(["simulate", "--workload", "PN++(c)", "--points", "1K",
                   "--accelerator", "FractalCloud"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "FractalCloud" in out
        assert "latency" in out and "mlp" in out

    def test_simulate_gpu(self, capsys):
        rc = main(["simulate", "--workload", "PN++(c)", "--points", "1K",
                   "--accelerator", "GPU"])
        assert rc == 0
        assert "GPU" in capsys.readouterr().out

    def test_compare(self, capsys):
        rc = main(["compare", "--workload", "PNXt(s)", "--scales", "8K,33K"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "speedup over GPU" in out
        assert "FractalCloud" in out

    def test_batch_run(self, capsys):
        rc = main(["batch-run", "--dataset", "modelnet40", "--clouds", "3",
                   "--points", "256", "--partitioner", "kdtree",
                   "--block-size", "32", "--workers", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "batch-run: 3 clouds on kdtree" in out
        assert "throughput" in out and "clouds/s" in out

    def test_batch_run_serial_mode(self, capsys):
        rc = main(["batch-run", "--dataset", "modelnet40", "--clouds", "2",
                   "--points", "128", "--partitioner", "uniform",
                   "--block-size", "32", "--workers", "1", "--mode", "serial",
                   "--no-batched-ops"])
        assert rc == 0
        assert "uniform" in capsys.readouterr().out

    def test_batch_run_rejects_unknown_partitioner(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["batch-run", "--partitioner", "exact"])

    def test_batch_run_prints_latency_summary(self, capsys):
        rc = main(["batch-run", "--dataset", "modelnet40", "--clouds", "3",
                   "--points", "128", "--partitioner", "kdtree",
                   "--block-size", "32", "--workers", "1"])
        assert rc == 0
        assert "p50/p95/p99" in capsys.readouterr().out

    def test_loadgen_to_file_then_serve(self, capsys, tmp_path):
        path = tmp_path / "traffic.npy"
        rc = main(["loadgen", "--clouds", "10", "--min-points", "40",
                   "--max-points", "120", "--dup-rate", "0.3", "--seed", "3",
                   "--out", str(path)])
        assert rc == 0
        assert path.stat().st_size > 0
        rc = main(["serve", "--input", str(path), "--window", "4",
                   "--max-wait-ms", "40", "--workers", "2",
                   "--partitioner", "kdtree", "--block-size", "32",
                   "--stats-every", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "served 10 clouds" in out
        assert "p50/p95/p99" in out
        assert "[serve]" in out  # the periodic telemetry line

    def test_serve_builtin_traffic(self, capsys):
        rc = main(["serve", "--clouds", "6", "--min-points", "32",
                   "--max-points", "64", "--window", "3", "--workers", "1",
                   "--partitioner", "kdtree", "--block-size", "32"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "served 6 clouds" in out
        assert "windows" in out and "points/s" in out

    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.window == 16
        assert args.max_wait_ms == 50.0
        assert args.input is None

    def test_loadgen_rejects_bad_spec(self):
        with pytest.raises(ValueError, match="min_points"):
            main(["loadgen", "--clouds", "2", "--min-points", "50",
                  "--max-points", "20", "--out", "-"])

    def test_serve_rejects_negative_in_flight(self):
        # 0 means "engine default"; negatives must fail loudly, not
        # silently fall back.
        with pytest.raises(ValueError, match="in_flight"):
            main(["serve", "--clouds", "2", "--in-flight", "-4"])

    def test_inference_loadgen_served_through_model(self, capsys, tmp_path):
        path = tmp_path / "inference.npy"
        rc = main(["loadgen", "--profile", "inference", "--clouds", "8",
                   "--min-points", "48", "--max-points", "120",
                   "--corrupt-rate", "0.5", "--seed", "4",
                   "--out", str(path)])
        assert rc == 0
        rc = main(["serve", "--input", str(path), "--model", "pointnet2-cls",
                   "--agg", "delayed", "--window", "4", "--workers", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "model pointnet2-cls [delayed]" in out
        assert "served 8 clouds" in out

    def test_serve_model_tenant_round_robin(self, capsys, tmp_path):
        path = tmp_path / "tenants.npy"
        rc = main(["loadgen", "--profile", "inference", "--clouds", "3",
                   "--tenants", "2", "--min-points", "48",
                   "--max-points", "96", "--seed", "6", "--out", str(path)])
        assert rc == 0
        rc = main(["serve", "--input", str(path), "--tenants", "2",
                   "--model", "pointnet2-cls,pointnet2-seg",
                   "--window", "4", "--workers", "1"])
        assert rc == 0
        assert "served 6 clouds" in capsys.readouterr().out

    def test_serve_model_errors(self, capsys):
        assert main(["serve", "--model", "bogus"]) == 2
        assert "unknown model" in capsys.readouterr().err
        # A comma list without --tenants has no tenant roster to spread
        # over; fail before consuming any stream.
        assert main(["serve", "--model",
                     "pointnet2-cls,pointnet2-seg"]) == 2
        assert "--tenants" in capsys.readouterr().err
