"""Zero-copy array transport between the router and engine shards.

The multiprocess queues that carry requests and results only ever ship
small control tuples; the point clouds and result tensors themselves
travel through ``multiprocessing.shared_memory`` segments.  Each side
that *produces* bulk data owns one :class:`ShmArena` — the router owns a
request arena per shard, every worker owns a response arena — and packs
arrays into it with one ``memcpy``.  The consumer attaches the segment
once and maps :class:`ArrayRef` descriptors back to numpy views without
copying; it signals consumption with a ``free`` message so the owner can
recycle the blocks.  Compared to pickling ndarrays through a queue
(serialise + two pipe copies + deserialise) that is two copies instead
of four-plus and no byte-level encode at all.

Allocation is a first-fit block pool over a fixed-size arena.  When a
payload does not fit (arena exhausted by in-flight traffic, or a cloud
larger than the arena), :meth:`ShmArena.pack` degrades per-array to an
*inline* ref that carries the bytes through the queue — correctness
never depends on arena capacity.  :class:`PickleChannel` is that
degraded mode as a deliberate transport choice (``--transport pickle``),
kept as the comparison baseline and for platforms without shm.
"""

from __future__ import annotations

import uuid
from dataclasses import dataclass, field
from multiprocessing import shared_memory

import numpy as np

__all__ = ["ArrayRef", "ShmArena", "ShmPeer", "PickleChannel"]

_ALIGN = 64  # block granularity; keeps views cache-line aligned


@dataclass(frozen=True)
class ArrayRef:
    """Descriptor for one array in flight.

    Either a window into a named shm segment (``segment`` set, ``data``
    None) or an inline payload (``segment`` None, ``data`` holding the
    bytes).  Descriptors are plain picklable values — they are what the
    control queues actually carry.
    """

    segment: str | None
    offset: int
    shape: tuple[int, ...]
    dtype: str
    data: bytes | None = None

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) * np.dtype(self.dtype).itemsize

    @property
    def inline(self) -> bool:
        return self.segment is None


def _round_up(n: int) -> int:
    return (n + _ALIGN - 1) // _ALIGN * _ALIGN


class ShmArena:
    """Owner side of one shared-memory segment: a first-fit block pool.

    The owner packs arrays in and reclaims blocks when the peer reports
    them consumed.  ``reclaim`` is driven by ``free`` messages on the
    control queue, so refcounts never need cross-process atomics — every
    block has exactly one producer (the owner) and one consumer.
    """

    def __init__(self, nbytes: int, *, name: str | None = None):
        if nbytes < _ALIGN:
            raise ValueError(f"arena must be at least {_ALIGN} bytes")
        nbytes = _round_up(nbytes)
        self._shm = shared_memory.SharedMemory(
            create=True,
            size=nbytes,
            name=name or f"repro-{uuid.uuid4().hex[:12]}",
        )
        self.nbytes = nbytes
        #: sorted list of (offset, length) holes
        self._free: list[tuple[int, int]] = [(0, nbytes)]
        self._live: dict[int, int] = {}  # offset -> length
        self.spilled = 0  # arrays that fell back to inline transport

    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def allocated(self) -> int:
        """Bytes currently handed out (zero once all refs are reclaimed)."""
        return sum(self._live.values())

    # -- allocation ----------------------------------------------------------

    def _alloc(self, nbytes: int) -> int | None:
        need = _round_up(max(nbytes, 1))
        for i, (off, length) in enumerate(self._free):
            if length >= need:
                if length == need:
                    del self._free[i]
                else:
                    self._free[i] = (off + need, length - need)
                self._live[off] = need
                return off
        return None

    def _release(self, offset: int) -> None:
        length = self._live.pop(offset)
        # insert the hole back, coalescing with neighbours
        self._free.append((offset, length))
        self._free.sort()
        merged: list[tuple[int, int]] = []
        for off, ln in self._free:
            if merged and merged[-1][0] + merged[-1][1] == off:
                merged[-1] = (merged[-1][0], merged[-1][1] + ln)
            else:
                merged.append((off, ln))
        self._free = merged

    # -- packing -------------------------------------------------------------

    def pack(self, array: np.ndarray) -> ArrayRef:
        """Copy one array into the arena; inline fallback when full."""
        array = np.ascontiguousarray(array)
        offset = self._alloc(array.nbytes)
        if offset is None:
            self.spilled += 1
            return ArrayRef(None, 0, array.shape, array.dtype.str,
                            data=array.tobytes())
        view = np.ndarray(array.shape, dtype=array.dtype,
                          buffer=self._shm.buf, offset=offset)
        view[...] = array
        del view
        return ArrayRef(self._shm.name, offset, array.shape, array.dtype.str)

    def pack_many(self, arrays) -> list[ArrayRef]:
        return [self.pack(a) for a in arrays]

    def reclaim(self, refs) -> None:
        """Return the blocks behind ``refs`` to the pool (``None``
        placeholders, inline refs, and refs from other segments are
        ignored)."""
        for ref in refs:
            if ref is None:
                continue
            if ref.segment == self._shm.name and ref.offset in self._live:
                self._release(ref.offset)

    def close(self) -> None:
        """Unlink the segment.  Owner-side close; call once."""
        self._free = []
        self._live = {}
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # already unlinked (e.g. worker died)
            pass


class ShmPeer:
    """Consumer side: attach segments lazily, map refs to views."""

    def __init__(self):
        self._segments: dict[str, shared_memory.SharedMemory] = {}

    def unpack(self, ref: ArrayRef, *, copy: bool = False) -> np.ndarray:
        """Materialise one ref.

        With ``copy=False`` shm refs come back as zero-copy views into
        the segment — valid only until the owner reclaims the block, so
        callers that retain arrays past the reply (e.g. delta-mode
        caches) must pass ``copy=True``.
        """
        if ref.inline:
            arr = np.frombuffer(ref.data, dtype=ref.dtype).reshape(ref.shape)
            return arr.copy() if copy else arr
        shm = self._segments.get(ref.segment)
        if shm is None:
            shm = shared_memory.SharedMemory(name=ref.segment)
            self._segments[ref.segment] = shm
        view = np.ndarray(ref.shape, dtype=ref.dtype,
                          buffer=shm.buf, offset=ref.offset)
        return view.copy() if copy else view

    def unpack_many(self, refs, *, copy: bool = False) -> list[np.ndarray]:
        return [self.unpack(ref, copy=copy) for ref in refs]

    def close(self) -> None:
        """Detach every attached segment (does not unlink — the owner
        does that)."""
        for shm in self._segments.values():
            try:
                shm.close()
            except BufferError:
                # A live numpy view still points into the buffer; the
                # process is exiting anyway, so leave the mapping to the
                # OS rather than crash the shutdown path.
                pass
        self._segments = {}


@dataclass
class PickleChannel:
    """Baseline transport: every array ships inline through the queue.

    Implements the same pack/unpack/reclaim surface as the shm pair so
    the router and workers are transport-agnostic.
    """

    spilled: int = 0
    allocated: int = field(default=0, init=False)

    @property
    def name(self) -> str:
        return ""

    def pack(self, array: np.ndarray) -> ArrayRef:
        array = np.ascontiguousarray(array)
        return ArrayRef(None, 0, array.shape, array.dtype.str,
                        data=array.tobytes())

    def pack_many(self, arrays) -> list[ArrayRef]:
        return [self.pack(a) for a in arrays]

    def unpack(self, ref: ArrayRef, *, copy: bool = False) -> np.ndarray:
        arr = np.frombuffer(ref.data, dtype=ref.dtype).reshape(ref.shape)
        return arr.copy() if copy else arr

    def unpack_many(self, refs, *, copy: bool = False) -> list[np.ndarray]:
        return [self.unpack(ref, copy=copy) for ref in refs]

    def reclaim(self, refs) -> None:  # nothing pooled
        pass

    def close(self) -> None:
        pass
