"""Indoor-scene segmentation: functional training + hardware breakdown.

The S3DIS-style workflow end to end:

1. Generate labelled indoor-scene crops and train the small numpy
   PointNet++ segmenter twice — once with exact global point operations,
   once with Fractal block-parallel operations — and compare mIoU (the
   Fig. 14 experiment, miniaturised).
2. Simulate PointNeXt segmentation of a full 33 K-point scene on
   PointAcc, Crescent, and FractalCloud and print the Fig. 15-style
   latency breakdown.

Run:  python examples/indoor_segmentation.py   (~2-3 minutes: it trains)
"""

import numpy as np

from repro.analysis import format_table
from repro.datasets import make_scene
from repro.geometry import PointCloud
from repro.hw import AcceleratorSim, CRESCENT, FRACTALCLOUD, POINTACC
from repro.networks import (
    PNNSegmenter,
    evaluate_segmenter,
    get_workload,
    make_backend,
    train_segmenter,
)

N_CROP = 128
NUM_CLASSES = 13


def scene_crops(num_crops: int, seed: int) -> list[PointCloud]:
    """Small normalised crops of generated rooms (training units)."""
    crops = []
    rng = np.random.default_rng(seed)
    for i in range(num_crops):
        cloud, _ = make_scene(2048, seed=seed * 100 + i)
        start = rng.integers(0, len(cloud) - N_CROP)
        crop = cloud.select(np.arange(start, start + N_CROP))
        crops.append(PointCloud(crop.coords, labels=crop.labels).normalized())
    return crops


def main() -> None:
    train = scene_crops(12, seed=1)
    test = scene_crops(6, seed=77)
    print(f"training on {len(train)} scene crops of {N_CROP} points, "
          f"{NUM_CLASSES} S3DIS-style classes\n")

    results = {}
    for name in ("exact", "fractal"):
        backend = make_backend(name, max_points_per_block=32)
        model = PNNSegmenter(num_classes=NUM_CLASSES, num_points=N_CROP,
                             arch="pointnet2", seed=0)
        history = train_segmenter(model, train, backend, epochs=6,
                                  batch_size=4, lr=3e-3)
        miou = evaluate_segmenter(model, test, backend)
        results[name] = miou
        print(f"  backend={name:8s} loss {history.losses[0]:.3f} -> "
              f"{history.losses[-1]:.3f}, test mIoU {100 * miou:.1f}%")

    delta = 100 * (results["exact"] - results["fractal"])
    print(f"\nFractal vs exact mIoU delta: {delta:+.1f} pp "
          f"(paper: < 0.7% after retraining)\n")

    spec = get_workload("PNXt(s)")
    rows = []
    for cfg in (POINTACC, CRESCENT, FRACTALCLOUD):
        r = AcceleratorSim(cfg).run(spec, 33_000)
        rows.append([
            cfg.name,
            f"{r.point_op_seconds * 1e3:.2f}",
            f"{r.mlp_seconds * 1e3:.2f}",
            f"{r.other_seconds * 1e3:.2f}",
            f"{r.latency_s * 1e3:.2f}",
            f"{r.energy_j * 1e3:.1f}",
        ])
    print(format_table(
        ["accelerator", "point ops ms", "MLPs ms", "others ms",
         "total ms", "energy mJ"],
        rows,
        title="hardware view: PNXt(s) @ 33K (Fig. 15)",
    ))


if __name__ == "__main__":
    main()
