"""Legacy setup shim: metadata lives in pyproject.toml.

Kept so ``pip install -e .`` works on environments without the ``wheel``
package (PEP 660 editable builds require it; ``setup.py develop`` does not).
"""

from setuptools import setup

setup()
