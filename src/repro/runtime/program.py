"""Op-level intermediate representation fed to the hardware simulator.

A :class:`Program` is a workload instantiated at one input scale against
one partitioning strategy: a sequence of :class:`StagePlan` objects, each
pairing a concrete network stage with the *measured* partition statistics
of that stage's input point set (block sizes, search-space sizes, and the
preprocessing cost counters the fractal engine turns into cycles).

The block statistics are grounded: the compiler partitions actual
synthetic point clouds (the same generators the functional experiments
use), so imbalance, search-space growth, and level counts reflect real
point distributions rather than balanced-tree idealisations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.blocks import PartitionCost

__all__ = ["PartitionStats", "StagePlan", "Program"]


@dataclass
class PartitionStats:
    """Measured block structure of one stage input."""

    strategy: str
    block_sizes: np.ndarray
    search_sizes: np.ndarray
    cost: PartitionCost

    @property
    def num_blocks(self) -> int:
        return len(self.block_sizes)

    @property
    def num_points(self) -> int:
        return int(self.block_sizes.sum())


@dataclass
class StagePlan:
    """One concrete stage plus the partition of its input (if any)."""

    stage: object  # networks.workloads.ConcreteStage
    partition: PartitionStats | None = None


@dataclass
class Program:
    """A compiled workload: the unit of simulation."""

    workload_key: str
    num_points: int
    partitioner: str
    stages: list[StagePlan] = field(default_factory=list)
    weight_bytes: float = 0.0
