"""Composite objects with per-point part labels (ShapeNet-part substitute).

Part segmentation workloads — PN++(ps) / PNXt(ps) in Table I — consume
objects whose points carry a part id.  Each composite here is assembled
from primitive surfaces (boxes, cylinders, spheres) with one part label
per primitive group, mirroring ShapeNet-part categories (table, chair,
lamp, airplane, mug).
"""

from __future__ import annotations

import numpy as np

from ..geometry import PointCloud
from .shapes import _cube, _cylinder, _sphere  # reuse primitive samplers

__all__ = ["PART_CLASSES", "sample_part_object", "make_part_dataset"]


def _box(n, rng, center, size):
    pts = _cube(n, rng) * (np.asarray(size) / 2.0)
    return pts + np.asarray(center)


def _rod(n, rng, center, radius, height):
    pts = _cylinder(n, rng)
    pts[:, :2] *= radius / 0.5
    pts[:, 2] *= height / 2.0
    return pts + np.asarray(center)


def _ball(n, rng, center, radius):
    return _sphere(n, rng) * radius + np.asarray(center)


def _table(rng: np.random.Generator) -> list[tuple[np.ndarray, int, float]]:
    """(sampler-output, part_id, area_weight) pieces for a table."""
    pieces = [(_box(256, rng, (0, 0, 0.75), (1.6, 1.0, 0.08)), 0, 4.0)]
    for sx in (-0.7, 0.7):
        for sy in (-0.4, 0.4):
            pieces.append((_rod(256, rng, (sx, sy, 0.375), 0.05, 0.75), 1, 0.6))
    return pieces


def _chair(rng: np.random.Generator) -> list[tuple[np.ndarray, int, float]]:
    pieces = [
        (_box(256, rng, (0, 0, 0.45), (0.5, 0.5, 0.06)), 0, 1.5),  # seat
        (_box(256, rng, (0, -0.25, 0.8), (0.5, 0.06, 0.7)), 1, 1.5),  # back
    ]
    for sx in (-0.2, 0.2):
        for sy in (-0.2, 0.2):
            pieces.append((_rod(256, rng, (sx, sy, 0.225), 0.03, 0.45), 2, 0.4))
    return pieces


def _lamp(rng: np.random.Generator) -> list[tuple[np.ndarray, int, float]]:
    return [
        (_box(256, rng, (0, 0, 0.03), (0.5, 0.5, 0.06)), 0, 1.0),  # base
        (_rod(256, rng, (0, 0, 0.6), 0.03, 1.1), 1, 0.8),  # pole
        (_rod(256, rng, (0, 0, 1.25), 0.3, 0.35), 2, 1.6),  # shade
    ]


def _airplane(rng: np.random.Generator) -> list[tuple[np.ndarray, int, float]]:
    fuselage = _rod(256, rng, (0, 0, 0), 0.18, 2.4)
    # Rotate fuselage to lie along x.
    fuselage = fuselage[:, [2, 0, 1]]
    return [
        (fuselage, 0, 2.0),
        (_box(256, rng, (0.1, 0, 0), (0.5, 2.6, 0.05)), 1, 2.6),  # wings
        (_box(256, rng, (-1.0, 0, 0.25), (0.3, 0.8, 0.05)), 2, 0.6),  # tail wing
        (_box(256, rng, (-1.05, 0, 0.3), (0.25, 0.05, 0.5)), 3, 0.4),  # fin
    ]


def _mug(rng: np.random.Generator) -> list[tuple[np.ndarray, int, float]]:
    body = _rod(384, rng, (0, 0, 0.4), 0.35, 0.8)
    handle = _ball(192, rng, (0.48, 0, 0.4), 0.18)
    handle = handle[np.abs(handle[:, 1]) < 0.09]  # slice a handle-like band
    return [(body, 0, 2.2), (handle, 1, 0.5)]


PART_CLASSES = {
    "table": (_table, 2),
    "chair": (_chair, 3),
    "lamp": (_lamp, 3),
    "airplane": (_airplane, 4),
    "mug": (_mug, 2),
}

_CLASS_NAMES = list(PART_CLASSES)


def sample_part_object(
    name: str,
    num_points: int,
    rng: np.random.Generator,
    *,
    noise: float = 0.008,
) -> PointCloud:
    """One labelled object of category ``name`` with exactly ``num_points``.

    Pieces are resampled area-proportionally so the output hits the
    requested size; labels are per-piece part ids.
    """
    if name not in PART_CLASSES:
        raise ValueError(f"unknown category {name!r}; expected one of {_CLASS_NAMES}")
    builder, _ = PART_CLASSES[name]
    pieces = builder(rng)
    weights = np.array([w for _, _, w in pieces], dtype=np.float64)
    weights /= weights.sum()
    counts = np.floor(weights * num_points).astype(int)
    counts[0] += num_points - counts.sum()

    coords_list, labels_list = [], []
    for (pts, part_id, _), count in zip(pieces, counts):
        if count == 0:
            continue
        idx = rng.integers(0, len(pts), size=count)
        coords_list.append(pts[idx])
        labels_list.append(np.full(count, part_id, dtype=np.int64))
    coords = np.concatenate(coords_list) + rng.normal(scale=noise, size=(num_points, 3))
    labels = np.concatenate(labels_list)
    perm = rng.permutation(num_points)
    cloud = PointCloud(
        coords[perm].astype(np.float32),
        labels=labels[perm],
        class_id=_CLASS_NAMES.index(name),
    )
    return cloud.normalized()


def make_part_dataset(
    num_clouds: int,
    points_per_cloud: int,
    seed: int = 0,
) -> list[PointCloud]:
    """A balanced ShapeNet-part-like dataset."""
    rng = np.random.default_rng(seed)
    return [
        sample_part_object(_CLASS_NAMES[i % len(_CLASS_NAMES)], points_per_cloud, rng)
        for i in range(num_clouds)
    ]
