"""Reuse-and-Skip-enabled Point Unit (RSPU) timing model (paper §V-C).

Covers both the baseline execution style (one point-operation engine with
point-level lane parallelism, global search — PointAcc/Mesorasi) and the
FractalCloud style (multiple RSPU cores, inter-block parallelism for FPS,
intra-block centre parallelism with shared search space for neighbour
search, window-check computation skipping).

Latency of block-parallel phases is the *makespan* of distributing block
workloads over the RSPU cores (longest-processing-time bound:
``max(max_block, total/units)``), which is how partial imbalance shows up
as the paper's ≤3 % overhead (§VI-D) rather than a cliff.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from . import energy as E
from .cost import UnitCost

__all__ = ["RSPUModel"]


def _makespan(per_block_cycles: np.ndarray, units: int) -> float:
    """LPT scheduling bound for distributing blocks over ``units`` cores."""
    if len(per_block_cycles) == 0:
        return 0.0
    total = float(per_block_cycles.sum())
    longest = float(per_block_cycles.max())
    return max(longest, total / units)


@dataclass(frozen=True)
class RSPUModel:
    """Point-operation engine model.

    Attributes:
        num_units: RSPU cores (inter-block parallel ways).
        lanes: distance-compute lanes per core.
        iter_overhead: per-FPS-iteration pipeline overhead (argmax drain).
        center_overhead: per-centre top-k/merge overhead cycles.
    """

    num_units: int = 16
    lanes: int = 8
    iter_overhead: int = 4
    center_overhead: int = 8

    @property
    def total_lanes(self) -> int:
        return self.num_units * self.lanes

    # ------------------------------------------------------------------ FPS
    def fps_global(self, n: int, s: int, *, window_check: bool = False) -> UnitCost:
        """Global farthest point sampling: ``s`` sequential iterations.

        Every iteration scans the candidate set with all lanes cooperating
        (the operation is iteration-serial, so cores cannot split it).
        With the window check, already-sampled points are skipped, so
        iteration ``i`` scans ``n - i`` candidates.
        """
        if s <= 0 or n <= 0:
            return UnitCost()
        s = min(s, n)
        if window_check:
            work = s * n - s * (s - 1) / 2.0
        else:
            work = float(s) * n
        cycles = work / self.total_lanes + s * self.iter_overhead
        # Each scanned candidate: coordinate read + distance compare.
        return UnitCost(
            compute_cycles=cycles,
            cmp_ops=4.0 * work,  # 3 sub/mul-acc + 1 compare per candidate
            sram_stream_bytes=work * E.COORD_BYTES,
        )

    def fps_blocks(
        self,
        block_sizes: np.ndarray,
        quotas: np.ndarray,
        *,
        window_check: bool = True,
        block_parallel: bool = True,
    ) -> UnitCost:
        """Block-wise FPS: independent per-block runs (inter-block parallel).

        Args:
            block_sizes: points per block.
            quotas: samples per block (same length).
            window_check: skip sampled points inside each block's scan.
            block_parallel: False models Crescent-style block-serial
                execution (one block at a time, all lanes on it).
        """
        block_sizes = np.asarray(block_sizes, dtype=np.float64)
        quotas = np.asarray(quotas, dtype=np.float64)
        if window_check:
            work = quotas * block_sizes - quotas * (quotas - 1) / 2.0
        else:
            work = quotas * block_sizes
        work = np.maximum(work, 0.0)
        if block_parallel:
            per_block = work / self.lanes + quotas * self.iter_overhead
            cycles = _makespan(per_block, self.num_units)
        else:
            per_block = work / self.total_lanes + quotas * self.iter_overhead
            cycles = float(per_block.sum())
        total_work = float(work.sum())
        return UnitCost(
            compute_cycles=cycles,
            cmp_ops=4.0 * total_work,
            sram_stream_bytes=total_work * E.COORD_BYTES,
        )

    # ------------------------------------------------------- neighbour search
    def neighbor_global(self, m: int, n: int, k: int) -> UnitCost:
        """Global ball query / KNN: every centre scans all ``n`` candidates.

        Point-level parallel (lanes split the candidate scan); centres are
        processed one at a time, so the search space is re-read per centre
        (no intra-block reuse — the inefficiency RSPU removes).
        """
        if m <= 0 or n <= 0:
            return UnitCost()
        work = float(m) * n
        cycles = work / self.total_lanes + m * self.center_overhead
        return UnitCost(
            compute_cycles=cycles,
            cmp_ops=4.0 * work + float(m) * n,  # distances + top-k compares
            sram_stream_bytes=work * E.COORD_BYTES,
        )

    def neighbor_blocks(
        self,
        centers_per_block: np.ndarray,
        search_sizes: np.ndarray,
        k: int,
        *,
        intra_block_reuse: bool = True,
        block_parallel: bool = True,
    ) -> UnitCost:
        """Block-wise neighbour search over (centres, search-space) pairs.

        With intra-block reuse, the RSPUs assigned to a block share its
        search-space data from one buffer, so coordinates are read once
        per block rather than once per centre (the 7.6x memory-access
        reduction of §VI-C).
        """
        centers = np.asarray(centers_per_block, dtype=np.float64)
        spaces = np.asarray(search_sizes, dtype=np.float64)
        work = centers * spaces
        if block_parallel:
            per_block = work / self.lanes + centers * self.center_overhead
            cycles = _makespan(per_block, self.num_units)
        else:
            per_block = work / self.total_lanes + centers * self.center_overhead
            cycles = float(per_block.sum())
        total_work = float(work.sum())
        if intra_block_reuse:
            sram = float(spaces.sum()) * E.COORD_BYTES + float(centers.sum()) * E.COORD_BYTES
        else:
            sram = total_work * E.COORD_BYTES
        return UnitCost(
            compute_cycles=cycles,
            cmp_ops=5.0 * total_work,
            sram_stream_bytes=sram,
        )
