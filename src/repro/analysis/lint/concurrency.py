"""Concurrency invariants: REP006 (lock discipline) and REP007 (pipe protocol).

REP006 encodes the router sender-thread lesson from PR 7: the router's
main thread once wrote requests straight into worker pipes; a pipe full
of a worker's own large inline results deadlocked both sides.  The fix —
per-shard sender threads — survives only if nobody reintroduces a
blocking pipe/queue operation under a lock, and if nested locks are
always taken in one global order.  Both are checked textually: lock
identity is the dotted expression (``self._pool_lock``), good enough for
the single-module lock scopes this repo uses.

REP007 pins the shard wire protocol: everything crossing a router/worker
pipe must be a tuple whose head is a known message kind (or the ``None``
sender-shutdown sentinel).  Arbitrary objects on the pipe are how
unpicklable payloads and protocol drift sneak in — the allowlist below
is the single source of truth and mirrors the message table in
:mod:`repro.shard.worker`'s docstring.
"""

from __future__ import annotations

import ast

from .engine import ModuleContext, dotted_name
from .registry import rule

__all__ = ["PIPE_MESSAGE_KINDS"]

#: Attribute calls that can block on a peer while a lock is held.
_BLOCKING_ATTRS = frozenset({"send", "recv", "join"})
#: .put/.get block too, but only on queue-like receivers — plain dicts
#: have .get as well, so the receiver name must look like a channel.
_QUEUEISH = ("queue", "inbox", "outbox", "box", "conn", "pipe", "sock")


def _lock_name(expr: ast.AST) -> str | None:
    """Dotted name when ``expr`` looks like a lock acquisition."""
    name = dotted_name(expr)
    if name and "lock" in name.rsplit(".", 1)[-1].lower():
        return name
    if isinstance(expr, ast.Call):
        inner = dotted_name(expr.func)
        if inner.rsplit(".", 1)[-1] in ("Lock", "RLock", "Condition", "Semaphore"):
            return inner
    return None


def _walk_skipping_defs(node: ast.AST):
    """Yield nodes below ``node`` without descending into nested defs —
    a function defined under a lock does not *run* under it."""
    for child in ast.iter_child_nodes(node):
        yield child
        if not isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef, ast.Lambda)):
            yield from _walk_skipping_defs(child)


@rule(
    "REP006",
    "lock-discipline",
    "no blocking pipe/queue operations while holding a lock; nested locks "
    "must always nest in the same order",
)
def check_lock_discipline(ctx: ModuleContext):
    order_edges: dict[tuple[str, str], int] = {}
    findings: list[tuple[int, int, str]] = []

    def scan(body_owner: ast.With, held: str) -> None:
        for node in _walk_skipping_defs(body_owner):
            if isinstance(node, ast.With):
                for item in node.items:
                    inner = _lock_name(item.context_expr)
                    if inner is None:
                        continue
                    if inner == held:
                        findings.append((
                            node.lineno, node.col_offset,
                            f"lock {held} re-acquired while already held "
                            "(self-deadlock unless it is an RLock)",
                        ))
                    else:
                        order_edges.setdefault((held, inner), node.lineno)
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                attr = node.func.attr
                receiver = dotted_name(node.func.value).lower()
                blocking = attr in _BLOCKING_ATTRS or (
                    attr in ("put", "get")
                    and any(q in receiver for q in _QUEUEISH)
                )
                if blocking:
                    findings.append((
                        node.lineno, node.col_offset,
                        f"blocking .{attr}() while holding lock {held}; a "
                        "full pipe/queue here deadlocks against the peer — "
                        "move the transfer outside the critical section "
                        "(the PR 7 sender-thread deadlock class)",
                    ))

    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.With):
            for item in node.items:
                name = _lock_name(item.context_expr)
                if name is not None:
                    scan(node, name)
    for (a, b), line in sorted(order_edges.items()):
        if (b, a) in order_edges:
            findings.append((
                line, 0,
                f"inconsistent lock order: {a} -> {b} here but {b} -> {a} "
                f"at line {order_edges[(b, a)]}; pick one global order",
            ))
    yield from sorted(set(findings))


#: Every message kind the router/worker protocol knows.  Tuples with any
#: other head — or non-tuple objects — must not cross a shard pipe.
PIPE_MESSAGE_KINDS = frozenset({
    "run", "free", "drain", "stop",            # router -> worker
    "ready", "results", "drained", "stopped",  # worker -> router
})

_SHARD_MODULES = ("repro.shard",)


def _is_relay(ctx: ModuleContext, name_node: ast.Name) -> bool:
    """True when the sent name was read off a queue/pipe in this scope —
    a forwarding loop relaying already-validated messages."""
    scope = ctx.parent(name_node)
    while scope is not None and not isinstance(
        scope, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)
    ):
        scope = ctx.parent(scope)
    if scope is None:
        return False
    for node in ast.walk(scope):
        if isinstance(node, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == name_node.id
            for t in node.targets
        ):
            value = node.value
            if (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)
                and value.func.attr in ("get", "recv")
            ):
                return True
    return False


@rule(
    "REP007",
    "unknown-pipe-message",
    "objects sent over shard pipes must be tuples from the known-picklable "
    "message-kind allowlist",
)
def check_pipe_messages(ctx: ModuleContext):
    if not ctx.in_module(*_SHARD_MODULES):
        return
    for node in ast.walk(ctx.tree):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
            continue
        attr = node.func.attr
        receiver = dotted_name(node.func.value).lower()
        is_pipe_send = attr == "send" and ("conn" in receiver or "pipe" in receiver)
        is_outbox_put = attr == "put" and ("outbox" in receiver or "inbox" in receiver)
        if not (is_pipe_send or is_outbox_put) or not node.args:
            continue
        payload = node.args[0]
        if isinstance(payload, ast.Constant) and payload.value is None:
            continue  # sender-thread shutdown sentinel
        if isinstance(payload, ast.Tuple):
            head = payload.elts[0] if payload.elts else None
            if (
                isinstance(head, ast.Constant)
                and isinstance(head.value, str)
                and head.value in PIPE_MESSAGE_KINDS
            ):
                continue
            kind = (
                head.value if isinstance(head, ast.Constant) else
                ast.dump(head) if head is not None else "<empty>"
            )
            yield (
                node.lineno, node.col_offset,
                f"tuple sent on a shard pipe with unknown message kind "
                f"{kind!r}; extend PIPE_MESSAGE_KINDS alongside the worker "
                "protocol table if this is a new message",
            )
            continue
        if isinstance(payload, ast.Name) and _is_relay(ctx, payload):
            continue
        yield (
            node.lineno, node.col_offset,
            "non-tuple object sent over a shard pipe; only allowlisted "
            "(kind, ...) control tuples are known-picklable on this wire",
        )
