"""Tests for analysis helpers (tables, geomeans, sweeps)."""

import pytest

from repro.analysis import format_si, format_table, geomean, ratio, threshold_sweep
from repro.networks import get_workload


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 22], [333, 4]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_geomean(self):
        assert geomean([1, 100]) == pytest.approx(10.0)
        assert geomean([7]) == pytest.approx(7.0)

    def test_geomean_validates(self):
        with pytest.raises(ValueError, match="empty"):
            geomean([])
        with pytest.raises(ValueError, match="positive"):
            geomean([1.0, 0.0])

    def test_ratio(self):
        assert ratio(10, 4) == pytest.approx(2.5)
        with pytest.raises(ZeroDivisionError):
            ratio(1, 0)

    def test_format_si(self):
        assert format_si(1024) == "1.02K"
        assert format_si(2_000_000) == "2M"
        assert format_si(12) == "12"


class TestThresholdSweep:
    def test_sweep_shape_and_tradeoff(self):
        """Fig. 17's qualitative trade-off: small thresholds are faster
        but distort sampling; no-fractal is the slow/lossless anchor."""
        spec = get_workload("PNXt(s)")
        points = threshold_sweep(spec, 8192, [None, 512, 64, 8])
        assert points[0].threshold is None
        assert points[0].speedup_vs_no_fractal == pytest.approx(1.0)
        by_th = {p.threshold: p for p in points}
        # Speedup: every fractal point beats no-fractal; smaller th faster.
        assert by_th[64].speedup_vs_no_fractal > 1.0
        assert by_th[8].speedup_vs_no_fractal >= by_th[512].speedup_vs_no_fractal
        # Quality: coverage distortion grows as blocks shrink.
        assert by_th[8].coverage_ratio >= by_th[512].coverage_ratio
        assert by_th[512].coverage_ratio >= 0.99
