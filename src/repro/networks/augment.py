"""Training-time augmentations for the numpy PNNs.

The standard point-cloud recipe (random rotation about the up axis,
anisotropic scale, jitter, point dropout) — the same family the released
PointNet++/PointNeXt training configs use.  Applied per cloud inside the
training loop; deterministic given the generator.
"""

from __future__ import annotations

import numpy as np

from ..geometry import PointCloud

__all__ = ["AugmentConfig", "augment_cloud"]


from dataclasses import dataclass


@dataclass(frozen=True)
class AugmentConfig:
    """Augmentation strengths (zero disables a transform)."""

    rotate_z: bool = True
    scale_low: float = 0.85
    scale_high: float = 1.15
    jitter_sigma: float = 0.01
    jitter_clip: float = 0.03
    dropout_max: float = 0.2


def augment_cloud(
    cloud: PointCloud, rng: np.random.Generator, config: AugmentConfig | None = None
) -> PointCloud:
    """One augmented view of ``cloud`` (labels follow surviving points)."""
    config = config or AugmentConfig()
    coords = cloud.coords.astype(np.float64)
    labels = cloud.labels

    if config.rotate_z:
        angle = rng.uniform(0, 2 * np.pi)
        c, s = np.cos(angle), np.sin(angle)
        rot = np.array([[c, -s, 0.0], [s, c, 0.0], [0.0, 0.0, 1.0]])
        coords = coords @ rot.T

    if config.scale_high > config.scale_low:
        coords = coords * rng.uniform(config.scale_low, config.scale_high, size=3)

    if config.jitter_sigma > 0:
        noise = rng.normal(scale=config.jitter_sigma, size=coords.shape)
        np.clip(noise, -config.jitter_clip, config.jitter_clip, out=noise)
        coords = coords + noise

    if config.dropout_max > 0:
        drop = rng.uniform(0, config.dropout_max)
        keep = max(int(len(coords) * (1 - drop)), 8)
        idx = np.sort(rng.choice(len(coords), size=keep, replace=False))
        coords = coords[idx]
        if labels is not None:
            labels = labels[idx]

    return PointCloud(coords.astype(np.float32), labels=labels, class_id=cloud.class_id)
