"""Save/load fractal trees and layouts (npz round-trip).

A downstream system partitions once per frame and reuses the result
across stages; persisting the tree makes offline pipelines (partition on
ingest, process later) practical.  The format stores, per leaf: the DFT
permutation, block boundaries, depths, and the cost counters — enough to
reconstruct a :class:`BlockStructure` and :class:`BlockLayout` without
re-running Fractal.  (The full parent hierarchy is captured through the
per-leaf search spaces.)
"""

from __future__ import annotations

import numpy as np

from .blocks import Block, BlockStructure, PartitionCost
from .tree import FractalTree

__all__ = ["save_block_structure", "load_block_structure", "save_tree"]

_FORMAT_VERSION = 1


def save_block_structure(path: str, structure: BlockStructure) -> None:
    """Serialise a block structure to ``path`` (npz)."""
    search_offsets = np.cumsum([0] + [len(s) for s in structure.search_spaces])
    block_offsets = np.cumsum([0] + [len(b.indices) for b in structure.blocks])
    np.savez_compressed(
        path,
        version=np.int64(_FORMAT_VERSION),
        num_points=np.int64(structure.num_points),
        strategy=np.bytes_(structure.strategy.encode()),
        block_indices=np.concatenate([b.indices for b in structure.blocks]),
        block_offsets=block_offsets.astype(np.int64),
        block_depths=np.array([b.depth for b in structure.blocks], dtype=np.int64),
        search_indices=(
            np.concatenate(structure.search_spaces)
            if structure.search_spaces
            else np.empty(0, dtype=np.int64)
        ),
        search_offsets=search_offsets.astype(np.int64),
        cost_sorts=np.array(structure.cost.sorts, dtype=np.int64),
        cost_traversals=np.array(structure.cost.traversals, dtype=np.int64),
        cost_passes=np.array(structure.cost.passes, dtype=np.int64),
        cost_levels=np.int64(structure.cost.levels),
    )


def load_block_structure(path: str) -> BlockStructure:
    """Load a block structure saved by :func:`save_block_structure`."""
    with np.load(path) as data:
        version = int(data["version"])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported format version {version}")
        block_offsets = data["block_offsets"]
        block_indices = data["block_indices"]
        depths = data["block_depths"]
        blocks = [
            Block(block_indices[block_offsets[i]: block_offsets[i + 1]],
                  depth=int(depths[i]))
            for i in range(len(block_offsets) - 1)
        ]
        search_offsets = data["search_offsets"]
        search_indices = data["search_indices"]
        spaces = [
            search_indices[search_offsets[i]: search_offsets[i + 1]]
            for i in range(len(search_offsets) - 1)
        ]
        cost = PartitionCost(
            sorts=data["cost_sorts"].tolist(),
            traversals=data["cost_traversals"].tolist(),
            passes=data["cost_passes"].tolist(),
            levels=int(data["cost_levels"]),
        )
        return BlockStructure(
            num_points=int(data["num_points"]),
            blocks=blocks,
            search_spaces=spaces,
            cost=cost,
            strategy=bytes(data["strategy"]).decode(),
        )


def save_tree(path: str, tree: FractalTree) -> None:
    """Convenience: serialise a fractal tree's block structure."""
    save_block_structure(path, tree.block_structure())
