"""Determinism invariants: REP005.

Every layer of the repo is parity-tested bit-identical to the serial
reference — batch engine, fused kernels, windowed server, shards.  Three
hazards quietly break that without failing any single-run test:

- **global numpy RNG** (``np.random.rand`` et al.): state shared across
  call sites means results depend on call *order*; a second tenant or a
  retried window changes every later draw.  Seeded
  ``np.random.default_rng(seed)`` generators are the sanctioned form.
- **wall-clock reads** (``time.time()``) in parity-scoped modules: a
  value that differs run-to-run must never feed anything content-hashed
  or replayed.  Intervals belong to the monotonic clock, read through
  ``repro.obs.now()`` (REP008 owns that discipline).
- **iteration over set displays/constructors**: set order is
  insertion-and-hash dependent; iterating one to build output (e.g. a
  set of digests) reorders results across processes with different hash
  seeds.  Sort first (``sorted(...)``) or keep an ordered container.
"""

from __future__ import annotations

import ast

from .engine import ModuleContext, dotted_name
from .registry import rule

__all__ = ["PARITY_MODULES"]

#: Dotted prefixes of the parity-tested surface: everything whose output
#: is asserted bit-identical to the serial reference somewhere in tests/.
PARITY_MODULES = (
    "repro.core",
    "repro.runtime",
    "repro.serve",
    "repro.shard",
)

#: np.random attributes that are constructors/containers, not draws from
#: the shared global state.
_RNG_SAFE = frozenset({"default_rng", "Generator", "SeedSequence", "RandomState"})


def _set_valued(node: ast.AST) -> bool:
    if isinstance(node, ast.Set):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


@rule(
    "REP005",
    "determinism-hazard",
    "no global np.random draws anywhere; no time.time() or iteration over "
    "set displays in parity-tested modules",
)
def check_determinism(ctx: ModuleContext):
    parity = ctx.in_module(*PARITY_MODULES)
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name.startswith(("np.random.", "numpy.random.")):
                attr = name.rsplit(".", 1)[-1]
                if attr not in _RNG_SAFE:
                    yield (
                        node.lineno, node.col_offset,
                        f"global-state RNG call {name}(); results depend on "
                        "call order — thread a seeded np.random.default_rng "
                        "through instead",
                    )
            elif parity and name in ("time.time", "time.time_ns"):
                yield (
                    node.lineno, node.col_offset,
                    f"{name}() in a parity-tested module; wall-clock values "
                    "differ run-to-run — use repro.obs.now() for intervals "
                    "or take timestamps as arguments",
                )
        elif parity and isinstance(node, (ast.For, ast.AsyncFor)):
            if _set_valued(node.iter):
                yield (
                    node.iter.lineno, node.iter.col_offset,
                    "iterating a set: order is hash-seed dependent; wrap in "
                    "sorted(...) or keep an ordered container",
                )
        elif parity and isinstance(node, (ast.ListComp, ast.SetComp,
                                          ast.DictComp, ast.GeneratorExp)):
            for gen in node.generators:
                if _set_valued(gen.iter):
                    yield (
                        gen.iter.lineno, gen.iter.col_offset,
                        "comprehension over a set: order is hash-seed "
                        "dependent; wrap in sorted(...)",
                    )
