"""Runtime resource sanitizer: a pytest plugin enforcing clean teardown.

Loaded for the whole suite via ``-p repro.analysis.sanitize`` (see
``pytest.ini``).  Around every test it snapshots the process's
concurrency/resource surface and fails the test if anything new is
still alive once the test *and its fixtures* have torn down:

- **threads** — pool workers, serve pullers, shard sender threads;
- **child processes** — engine shards, process-pool workers;
- **/dev/shm segments** — shared-memory arenas that were never unlinked.

This promotes PR 7's ad-hoc "no leaked shm" assertions into a
harness-wide invariant: any test that acquires a resource must release
it, which is exactly the REP004 contract checked statically by
``repro lint``.  The static rule catches resources that provably never
escape; this plugin catches the laundered ones at runtime.

Engines dropped without ``close()`` release their pools through a GC
finalizer, so the leak check runs ``gc.collect()`` inside its grace loop
before declaring a leak — tests are required to *release* resources, not
to micromanage collection.  Genuinely stuck threads, live children, and
still-linked segments survive the grace period and fail the test.

Opt-outs, sparingly: mark a test ``@pytest.mark.no_sanitize`` when it
deliberately leaks (e.g. to exercise this plugin itself).
"""

from __future__ import annotations

import gc
import multiprocessing
import os
import threading
import time

import pytest

from .. import obs

__all__ = [
    "GRACE_SECONDS",
    "extra_shm_segments",
    "extra_threads",
    "live_children",
    "shm_segments",
]

#: How long a test's stragglers get to finish dying before we call leak.
#: Puller/sender threads exit within one 50 ms poll of their stop event;
#: pool shutdown(wait=False) finalizers need a GC pass plus a moment.
GRACE_SECONDS = 2.0

_SHM_DIR = "/dev/shm"
#: Segment name prefixes we account for: python's own (psm_ on POSIX,
#: wnsm_ historically) and this repo's named arenas (repro-).
_SHM_PREFIXES = ("psm_", "wnsm_", "repro-")


def shm_segments() -> set[str]:
    """Shared-memory segments currently linked on this host."""
    if not os.path.isdir(_SHM_DIR):
        return set()
    return {
        name for name in os.listdir(_SHM_DIR)
        if name.startswith(_SHM_PREFIXES)
    }


def _threads() -> set[threading.Thread]:
    return set(threading.enumerate())


def extra_threads(baseline: set[threading.Thread]) -> list[str]:
    """Names of live threads that did not exist at the baseline."""
    return sorted(
        t.name for t in _threads() - baseline if t.is_alive()
    )


def live_children(baseline: set[int]) -> list[str]:
    """Child processes alive now that were not alive at the baseline
    (calling ``active_children`` also reaps finished ones)."""
    return sorted(
        f"{p.name}(pid={p.pid})"
        for p in multiprocessing.active_children()
        if p.is_alive() and p.pid not in baseline
    )


def extra_shm_segments(baseline: set[str]) -> list[str]:
    return sorted(shm_segments() - baseline)


def _snapshot():
    return {
        "threads": _threads(),
        "children": {p.pid for p in multiprocessing.active_children()},
        "shm": shm_segments(),
    }


def _leaks(base) -> dict[str, list[str]]:
    report = {
        "threads": extra_threads(base["threads"]),
        "children": live_children(base["children"]),
        "shm": extra_shm_segments(base["shm"]),
    }
    return {kind: names for kind, names in report.items() if names}


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "no_sanitize: skip the post-test thread/process/shm leak check "
        "(for tests that leak deliberately)",
    )


@pytest.hookimpl(wrapper=True, tryfirst=True)
def pytest_runtest_setup(item):
    # Snapshot before any fixture runs, so fixture-acquired resources
    # are accounted to the test that requested them.
    item.stash[_BASELINE_KEY] = _snapshot()
    return (yield)


_BASELINE_KEY = pytest.StashKey()


@pytest.hookimpl(wrapper=True)
def pytest_runtest_teardown(item, nextitem):
    # The wrapped (inner) impls run the actual fixture teardown; only
    # after they finish does the leak accounting make sense.
    result = yield
    baseline = item.stash.get(_BASELINE_KEY, None)
    if baseline is None or item.get_closest_marker("no_sanitize"):
        return result
    leaks = _leaks(baseline)
    deadline = obs.now() + GRACE_SECONDS
    while leaks and obs.now() < deadline:
        # Dropped-not-closed engines free their pools via GC finalizers;
        # stopping threads need a poll tick to notice their event.
        gc.collect()
        time.sleep(0.05)
        leaks = _leaks(baseline)
    if leaks:
        detail = "; ".join(
            f"{kind}: {', '.join(names)}" for kind, names in sorted(leaks.items())
        )
        pytest.fail(
            f"resource sanitizer: test left live resources behind — {detail}. "
            "Close/join what the test acquired (context managers preferred); "
            "mark @pytest.mark.no_sanitize only for deliberate leaks.",
            pytrace=False,
        )
    return result
