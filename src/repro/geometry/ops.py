"""Exact (global-search) reference point operations.

These are the operations the paper identifies as the large-scale
bottleneck (§II-B): farthest point sampling, ball query, K-nearest
neighbours, interpolation, and gathering.  All run a *global* search over
the candidate set, i.e. they reproduce the O(n²) baseline behaviour of
PointAcc/Mesorasi-style execution.  The block-parallel variants live in
``repro.core.bppo`` and are validated against these references.

Conventions (matching PointNet++ semantics):

- Ball query returns exactly ``num`` indices per centre; when fewer than
  ``num`` points fall within the radius the first found index is repeated
  (the standard padding used by PointNet++ and its descendants).  When a
  centre has *no* neighbour within the radius, the nearest point overall is
  used so downstream gathers never see an invalid index.
- Interpolation is inverse-distance-weighted over the K=3 nearest sampled
  points, with an epsilon guard for coincident points.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "pairwise_sq_dists",
    "farthest_point_sample",
    "ball_query",
    "knn_search",
    "interpolate_features",
    "interpolation_weights",
    "gather_features",
]


def pairwise_sq_dists(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances between rows of ``a`` (m,3) and ``b`` (n,3).

    Returns an ``(m, n)`` float64 matrix.  Uses the expanded form with a
    clamp at zero to avoid negative round-off.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    d2 = (
        np.sum(a * a, axis=1)[:, None]
        + np.sum(b * b, axis=1)[None, :]
        - 2.0 * (a @ b.T)
    )
    np.maximum(d2, 0.0, out=d2)
    return d2


def farthest_point_sample(
    coords: np.ndarray,
    num_samples: int,
    *,
    start_index: int = 0,
) -> np.ndarray:
    """Exact farthest point sampling (FPS) over the full cloud.

    Iteratively selects the point farthest (in Euclidean distance) from the
    already-sampled set, starting from ``start_index``.  This is the
    O(n * num_samples) formulation with an incrementally maintained
    min-distance array — the same dataflow the PointAcc FPS engine
    implements in hardware.

    Args:
        coords: ``(n, 3)`` candidate coordinates.
        num_samples: number of points to select (1 <= num_samples <= n).
        start_index: deterministic seed point (papers typically random;
            a fixed index keeps experiments reproducible).

    Returns:
        ``(num_samples,)`` int64 indices into ``coords``, in selection order.
    """
    coords = np.asarray(coords, dtype=np.float64)
    n = len(coords)
    if not 1 <= num_samples <= n:
        raise ValueError(f"num_samples must be in [1, {n}], got {num_samples}")
    if not 0 <= start_index < n:
        raise ValueError(f"start_index must be in [0, {n}), got {start_index}")

    selected = np.empty(num_samples, dtype=np.int64)
    selected[0] = start_index
    # min squared distance from each point to the sampled set so far
    min_d2 = np.sum((coords - coords[start_index]) ** 2, axis=1)
    for i in range(1, num_samples):
        nxt = int(np.argmax(min_d2))
        selected[i] = nxt
        d2 = np.sum((coords - coords[nxt]) ** 2, axis=1)
        np.minimum(min_d2, d2, out=min_d2)
    return selected


def ball_query(
    centers: np.ndarray,
    candidates: np.ndarray,
    radius: float,
    num: int,
) -> np.ndarray:
    """Ball query: up to ``num`` candidate indices within ``radius`` of each centre.

    Follows PointNet++ semantics: indices are taken in candidate order, the
    first in-radius index pads any remaining slots, and a centre with no
    in-radius candidate falls back to its single nearest candidate.

    Args:
        centers: ``(m, 3)`` query centres.
        candidates: ``(n, 3)`` search space.
        radius: inclusion radius (Euclidean).
        num: group size (number of neighbour slots per centre).

    Returns:
        ``(m, num)`` int64 indices into ``candidates``.
    """
    if radius <= 0:
        raise ValueError(f"radius must be positive, got {radius}")
    if num < 1:
        raise ValueError(f"num must be >= 1, got {num}")
    centers = np.asarray(centers, dtype=np.float64)
    candidates = np.asarray(candidates, dtype=np.float64)
    d2 = pairwise_sq_dists(centers, candidates)
    r2 = float(radius) ** 2

    m, n = d2.shape
    out = np.empty((m, num), dtype=np.int64)
    for i in range(m):
        hits = np.nonzero(d2[i] <= r2)[0]
        if len(hits) == 0:
            hits = np.array([int(np.argmin(d2[i]))], dtype=np.int64)
        if len(hits) >= num:
            out[i] = hits[:num]
        else:
            out[i, : len(hits)] = hits
            out[i, len(hits):] = hits[0]
    return out


def knn_search(centers: np.ndarray, candidates: np.ndarray, k: int) -> np.ndarray:
    """Exact K-nearest-neighbour indices for each centre.

    Neighbours are ordered nearest-first.  Ties break by candidate index
    (``argsort`` stability on equal keys is enforced with a lexicographic
    tiebreak), which keeps results deterministic across platforms.

    Args:
        centers: ``(m, 3)`` query centres.
        candidates: ``(n, 3)`` search space with ``n >= k``.
        k: neighbour count.

    Returns:
        ``(m, k)`` int64 indices into ``candidates``.
    """
    centers = np.asarray(centers, dtype=np.float64)
    candidates = np.asarray(candidates, dtype=np.float64)
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if len(candidates) < k:
        raise ValueError(f"need at least k={k} candidates, got {len(candidates)}")
    d2 = pairwise_sq_dists(centers, candidates)
    # argpartition then stable sort of the k winners: O(mn + mk log k)
    part = np.argpartition(d2, k - 1, axis=1)[:, :k]
    rows = np.arange(len(centers))[:, None]
    order = np.lexsort((part, d2[rows, part]), axis=1)
    return part[rows, order].astype(np.int64)


def interpolation_weights(
    centers: np.ndarray,
    candidates: np.ndarray,
    k: int = 3,
    *,
    eps: float = 1e-8,
) -> tuple[np.ndarray, np.ndarray]:
    """Inverse-distance weights over the K nearest candidates of each centre.

    This is the weight computation used by PointNet++ feature propagation
    (paper Fig. 2(c)): ``w_j = (1/d_j) / sum_i (1/d_i)`` over the K nearest
    sampled points.

    Returns:
        ``(indices, weights)`` with shapes ``(m, k)``; weights rows sum to 1.
    """
    idx = knn_search(centers, candidates, k)
    centers = np.asarray(centers, dtype=np.float64)
    candidates = np.asarray(candidates, dtype=np.float64)
    diffs = centers[:, None, :] - candidates[idx]
    d2 = np.sum(diffs * diffs, axis=2)
    inv = 1.0 / np.maximum(d2, eps)
    weights = inv / inv.sum(axis=1, keepdims=True)
    return idx, weights


def interpolate_features(
    centers: np.ndarray,
    candidates: np.ndarray,
    candidate_features: np.ndarray,
    k: int = 3,
) -> np.ndarray:
    """Interpolate candidate features onto centres (3-NN inverse distance).

    Args:
        centers: ``(m, 3)`` points to restore features for.
        candidates: ``(n, 3)`` sampled points that carry features.
        candidate_features: ``(n, c)`` features of the candidates.
        k: neighbour count (3 in all evaluated networks).

    Returns:
        ``(m, c)`` interpolated features (float64).
    """
    candidate_features = np.asarray(candidate_features, dtype=np.float64)
    if candidate_features.ndim != 2 or len(candidate_features) != len(candidates):
        raise ValueError(
            f"candidate_features must be (n, c) with n={len(candidates)}, "
            f"got {candidate_features.shape}"
        )
    idx, weights = interpolation_weights(centers, candidates, k)
    return np.einsum("mk,mkc->mc", weights, candidate_features[idx])


def gather_features(features: np.ndarray, indices: np.ndarray) -> np.ndarray:
    """Gather feature rows by neighbour indices.

    Functionally this is just fancy indexing — the paper's contribution is
    about *where the bytes live* (block-local banks vs global random
    access), which the hardware model accounts for separately.

    Args:
        features: ``(n, c)`` feature table.
        indices: ``(m, k)`` (or any integer-shaped) indices into the table.

    Returns:
        Array of shape ``indices.shape + (c,)``.
    """
    features = np.asarray(features)
    indices = np.asarray(indices)
    if not np.issubdtype(indices.dtype, np.integer):
        raise ValueError(f"indices must be integers, got dtype {indices.dtype}")
    if indices.size and (indices.min() < 0 or indices.max() >= len(features)):
        raise IndexError(
            f"indices out of range [0, {len(features)}): "
            f"[{indices.min()}, {indices.max()}]"
        )
    return features[indices]
