"""Shared helpers for the benchmark harness.

Every bench regenerates one of the paper's tables or figures: it computes
the series with the library, prints it (visible with ``pytest -s``), and
writes it to ``benchmarks/results/<name>.txt`` so the artefacts survive
the run.  EXPERIMENTS.md indexes the outputs against the paper's numbers.
"""

from __future__ import annotations

import os
import time

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def best_time(fn, *, repeats: int = 3):
    """Run ``fn`` ``repeats`` times; return ``(best_seconds, last_result)``.

    Best-of-N is the standard defence against one-off scheduler noise when
    two implementations are compared on wall time; the result is returned
    so callers can assert on correctness as well as speed.
    """
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def emit(name: str, text: str) -> str:
    """Print a result block and persist it under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    banner = f"\n===== {name} =====\n{text}\n"
    print(banner)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as fh:
        fh.write(text + "\n")
    return path
