"""Serving layer: windowed micro-batching on top of the batch engine.

- :mod:`repro.serve.window` — the :class:`WindowedServer` micro-batcher
  (collect up to ``W`` clouds or ``T`` ms, fuse, emit in order);
- :mod:`repro.serve.planner` — best-fit-decreasing bucket packing,
  shared with ``BatchExecutor.run(fuse=True)``;
- :mod:`repro.serve.telemetry` — rolling latency percentiles and window
  health counters;
- :mod:`repro.serve.loadgen` — seeded serving-shaped traffic plus the
  ``.npy``-record wire format of ``repro loadgen | repro serve``.
"""

from .loadgen import LoadSpec, generate, read_stream, write_stream
from .planner import (
    WindowPlan,
    first_fit_buckets,
    plan_buckets,
    singleton_count,
)
from .telemetry import ServeReport, ServeTelemetry, latency_percentiles

__all__ = [
    "LoadSpec",
    "ServeReport",
    "ServeTelemetry",
    "WindowConfig",
    "WindowPlan",
    "WindowedServer",
    "first_fit_buckets",
    "generate",
    "latency_percentiles",
    "plan_buckets",
    "read_stream",
    "singleton_count",
    "write_stream",
]

_WINDOW_EXPORTS = ("WindowedServer", "WindowConfig")


def __getattr__(name: str):
    # repro.runtime.executor imports repro.serve.planner at module load,
    # which executes this package __init__; importing .window here
    # eagerly would close the cycle (window needs the executor).  Loading
    # it on first attribute access keeps both import orders working.
    if name in _WINDOW_EXPORTS:
        from . import window

        return getattr(window, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
