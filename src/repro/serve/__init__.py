"""Serving layer: windowed micro-batching on top of the batch engine.

- :mod:`repro.serve.window` — the :class:`WindowedServer` micro-batcher
  (collect up to ``W`` clouds or ``T`` ms, fuse, emit in order);
- :mod:`repro.serve.tenancy` — the :class:`MultiTenantServer`: N client
  sessions (own pipeline, dedup window, telemetry) sharing one engine
  under deficit-round-robin fairness, with cross-tenant fused windows;
- :mod:`repro.serve.controller` — the :class:`AdaptiveWindow` policy
  that resizes ``W``/``T`` online from arrival rate + rolling p95;
- :mod:`repro.serve.planner` — best-fit-decreasing bucket packing,
  shared with ``BatchExecutor.run(fuse=True)``;
- :mod:`repro.serve.telemetry` — rolling latency percentiles and window
  health counters, per stream (= per tenant);
- :mod:`repro.serve.loadgen` — seeded serving-shaped traffic (uniform /
  diurnal / adversarial / frames profiles, multi-tenant mixes) plus the
  ``.npy``-record wire format of ``repro loadgen | repro serve``.
"""

from .controller import AdaptiveWindow, ControllerConfig
from .loadgen import (
    LoadSpec,
    generate,
    generate_tenants,
    read_stream,
    read_tenant_stream,
    tenant_specs,
    write_stream,
    write_tenant_stream,
)
from .planner import (
    WindowPlan,
    first_fit_buckets,
    plan_buckets,
    singleton_count,
)
from .telemetry import ServeReport, ServeTelemetry, latency_percentiles

__all__ = [
    "AdaptiveWindow",
    "ControllerConfig",
    "DeficitRoundRobin",
    "LoadSpec",
    "MultiTenantServer",
    "ServeReport",
    "ServeTelemetry",
    "TenantResult",
    "TenantSpec",
    "WindowConfig",
    "WindowPlan",
    "WindowedServer",
    "first_fit_buckets",
    "generate",
    "generate_tenants",
    "latency_percentiles",
    "plan_buckets",
    "read_stream",
    "read_tenant_stream",
    "singleton_count",
    "tenant_specs",
    "write_stream",
    "write_tenant_stream",
]

#: Exports that live in modules importing repro.runtime.executor.
_LAZY_EXPORTS = {
    "WindowedServer": "window",
    "WindowConfig": "window",
    "MultiTenantServer": "tenancy",
    "TenantSpec": "tenancy",
    "TenantResult": "tenancy",
    "DeficitRoundRobin": "tenancy",
}


def __getattr__(name: str):
    # repro.runtime.executor imports repro.serve.planner at module load,
    # which executes this package __init__; importing .window / .tenancy
    # here eagerly would close the cycle (both need the executor).
    # Loading them on first attribute access keeps both import orders
    # working.
    if name in _LAZY_EXPORTS:
        import importlib

        module = importlib.import_module(f".{_LAZY_EXPORTS[name]}", __name__)
        return getattr(module, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
